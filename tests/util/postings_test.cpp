#include "util/postings.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace cw::util {
namespace {

// Builds a packed list from an ascending vector and checks every read path
// (for_each, iterator, to_vector, size) yields exactly the source sequence.
void ExpectEquivalent(const std::vector<std::uint32_t>& reference) {
  PostingList list;
  for (const std::uint32_t v : reference) list.append(v);
  list.shrink();

  EXPECT_EQ(list.size(), reference.size());
  EXPECT_EQ(list.empty(), reference.empty());
  EXPECT_EQ(list.to_vector(), reference);

  std::vector<std::uint32_t> via_for_each;
  list.for_each([&via_for_each](std::uint32_t v) { via_for_each.push_back(v); });
  EXPECT_EQ(via_for_each, reference);

  std::vector<std::uint32_t> via_iter;
  for (const std::uint32_t v : list) via_iter.push_back(v);
  EXPECT_EQ(via_iter, reference);

  PostingView view(list);
  EXPECT_EQ(view.size(), reference.size());
  EXPECT_EQ(view.to_vector(), reference);
}

TEST(PostingListTest, Empty) { ExpectEquivalent({}); }

TEST(PostingListTest, SingleElement) {
  ExpectEquivalent({0});
  ExpectEquivalent({65535});
  ExpectEquivalent({65536});
  ExpectEquivalent({4294967295u});
}

TEST(PostingListTest, DenseRun) {
  // A full contiguous run forces the array->bitmap conversion mid-container.
  std::vector<std::uint32_t> reference;
  for (std::uint32_t v = 0; v < 70000; ++v) reference.push_back(v);
  ExpectEquivalent(reference);
}

TEST(PostingListTest, SparseTail) {
  // Dense head, then widely spaced stragglers across many containers.
  std::vector<std::uint32_t> reference;
  for (std::uint32_t v = 0; v < 5000; ++v) reference.push_back(v);
  for (std::uint32_t v = 1; v <= 40; ++v) reference.push_back(100000u * v + (v % 7));
  ExpectEquivalent(reference);
}

TEST(PostingListTest, FullRangeContainer) {
  // All 65536 values of one container, bracketed by neighbors.
  std::vector<std::uint32_t> reference;
  reference.push_back(65535);  // last slot of container 0
  for (std::uint32_t v = 65536; v < 131072; ++v) reference.push_back(v);
  reference.push_back(131072);  // first slot of container 2
  ExpectEquivalent(reference);
}

TEST(PostingListTest, ContainerBoundaryStraddle) {
  ExpectEquivalent({65534, 65535, 65536, 65537, 131071, 131072});
}

TEST(PostingListTest, ExactlyAtConversionThreshold) {
  // 4096 elements stay an array; the 4097th converts.
  std::vector<std::uint32_t> at_threshold;
  for (std::uint32_t v = 0; v < PostingList::kArrayMax; ++v) at_threshold.push_back(2 * v);
  ExpectEquivalent(at_threshold);
  at_threshold.push_back(2 * PostingList::kArrayMax);
  ExpectEquivalent(at_threshold);
}

TEST(PostingListTest, RandomAscendingMatchesVector) {
  std::mt19937 gen(7);
  for (const double density : {0.9, 0.1, 0.001}) {
    std::vector<std::uint32_t> reference;
    std::geometric_distribution<std::uint32_t> gap(density);
    std::uint64_t next = 0;
    while (reference.size() < 50000 && next <= 0xFFFFFFFFull) {
      reference.push_back(static_cast<std::uint32_t>(next));
      next += 1 + gap(gen);
    }
    ExpectEquivalent(reference);
  }
}

TEST(PostingListTest, PackedBeatsVectorOnDenseRuns) {
  PostingList list;
  for (std::uint32_t v = 0; v < 1u << 20; ++v) list.append(v);
  list.shrink();
  // 1Mi dense indices: ~2 bits each packed vs 32 bits in a vector.
  EXPECT_LT(list.bytes(), (1u << 20) * sizeof(std::uint32_t) / 8);
}

TEST(PostingListTest, NonIncreasingAppendThrowsInEveryBuildMode) {
  // Satellite contract: the ascending-append validation must survive NDEBUG.
  // This test runs in the release-mode tier-1 build (RelWithDebInfo), where
  // the old assert() compiled away and an out-of-order append silently
  // corrupted the container order.
  PostingList list;
  list.append(10);
  list.append(11);
  EXPECT_THROW(list.append(11), std::logic_error);  // equal
  EXPECT_THROW(list.append(5), std::logic_error);   // decreasing
  EXPECT_THROW(list.append(0), std::logic_error);   // decreasing to minimum
  // The failed appends left the list exactly as it was.
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{10, 11}));
  // And the list still accepts valid appends afterwards.
  list.append(12);
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{10, 11, 12}));
}

TEST(PostingListTest, RejectsDuplicateOfMaxValue) {
  // value+1 arithmetic at the top of the range must not wrap.
  PostingList list;
  list.append(4294967295u);
  EXPECT_THROW(list.append(4294967295u), std::logic_error);
  EXPECT_EQ(list.to_vector(), (std::vector<std::uint32_t>{4294967295u}));
}

TEST(PostingViewTest, WrapsVectorAndDefault) {
  const std::vector<std::uint32_t> vec = {3, 9, 27};
  PostingView view(vec);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.as_vector(), &vec);
  EXPECT_EQ(view.to_vector(), vec);
  std::vector<std::uint32_t> seen;
  view.for_each([&seen](std::uint32_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, vec);

  PostingView empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.as_vector(), nullptr);
  EXPECT_TRUE(empty.to_vector().empty());
}

// Serializes `reference` through PostingList::serialize and checks the
// PostingSpan parsed back out of the bytes yields the identical ascending
// sequence through every read path (for_each, to_vector, PostingView).
void ExpectSerializedEquivalent(const std::vector<std::uint32_t>& reference) {
  PostingList list;
  for (const std::uint32_t v : reference) list.append(v);
  list.shrink();

  std::vector<std::uint8_t> blob = {0xAB, 0xCD, 0xEF};  // force alignment padding
  const std::size_t base = list.serialize(blob);
  EXPECT_EQ(base % 8, 0u);
  EXPECT_GE(blob.size(), base);

  PostingSpan span;
  std::size_t length = 0;
  ASSERT_TRUE(PostingSpan::parse(blob.data() + base, blob.size() - base, span, length));
  EXPECT_EQ(base + length, blob.size());
  EXPECT_EQ(span.size(), reference.size());
  EXPECT_EQ(span.to_vector(), reference);

  std::vector<std::uint32_t> via_for_each;
  span.for_each([&via_for_each](std::uint32_t v) { via_for_each.push_back(v); });
  EXPECT_EQ(via_for_each, reference);

  PostingView view(span);
  EXPECT_EQ(view.size(), reference.size());
  EXPECT_EQ(view.to_vector(), reference);
}

TEST(PostingSerializeTest, RoundTripsEveryContainerShape) {
  ExpectSerializedEquivalent({});
  ExpectSerializedEquivalent({0});
  ExpectSerializedEquivalent({42});
  ExpectSerializedEquivalent({0, 65535, 65536, 131071});  // container boundaries

  // Around the array-to-bitmap conversion threshold (4096 entries in one
  // 64Ki container): one below, exactly at, one above.
  for (const std::uint32_t count : {4095u, 4096u, 4097u}) {
    std::vector<std::uint32_t> reference;
    reference.reserve(count);
    for (std::uint32_t v = 0; v < count; ++v) reference.push_back(v * 3);  // stays < 64Ki*3
    ExpectSerializedEquivalent(reference);
  }

  // A full dense container (bitmap) followed by a sparse tail container.
  std::vector<std::uint32_t> mixed;
  for (std::uint32_t v = 0; v < 65536; ++v) mixed.push_back(v);
  for (std::uint32_t v = 0; v < 10; ++v) mixed.push_back(65536 + v * 1000);
  ExpectSerializedEquivalent(mixed);
}

TEST(PostingSerializeTest, RoundTripsRandomAscendingSets) {
  std::mt19937 rng(20260808);
  for (const std::size_t target : {10u, 1000u, 20000u}) {
    std::vector<std::uint32_t> reference;
    std::uint32_t v = rng() % 64;
    while (reference.size() < target) {
      reference.push_back(v);
      v += 1 + rng() % 97;
    }
    ExpectSerializedEquivalent(reference);
  }
}

TEST(PostingSpanTest, RejectsTruncatedAndCorruptBlobs) {
  PostingList list;
  for (std::uint32_t v = 0; v < 5000; ++v) list.append(v * 2);
  list.shrink();
  std::vector<std::uint8_t> blob;
  const std::size_t base = list.serialize(blob);
  PostingSpan span;
  std::size_t length = 0;
  ASSERT_TRUE(PostingSpan::parse(blob.data() + base, blob.size() - base, span, length));

  // Every prefix strictly shorter than the blob must be rejected — the
  // parser may not read past `avail`.
  for (const std::size_t avail : {std::size_t{0}, std::size_t{8}, std::size_t{15},
                                  length / 2, length - 1}) {
    PostingSpan out;
    std::size_t out_length = 0;
    EXPECT_FALSE(PostingSpan::parse(blob.data() + base, avail, out, out_length))
        << "avail " << avail;
    EXPECT_TRUE(out.empty());
  }

  // An unknown container kind in the directory is a structural violation.
  std::vector<std::uint8_t> corrupt(blob.begin() + static_cast<std::ptrdiff_t>(base), blob.end());
  corrupt[16 + 2] = 0x7F;  // first DirEntry's kind field
  PostingSpan out;
  std::size_t out_length = 0;
  EXPECT_FALSE(PostingSpan::parse(corrupt.data(), corrupt.size(), out, out_length));
}

}  // namespace
}  // namespace cw::util
