#include "util/crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cw::util {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE/zlib check values; "123456789" is the canonical CRC-32 check.
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(crc32(fox.data(), fox.size()), 0x414FA339u);
  const std::string a = "a";
  EXPECT_EQ(crc32(a.data(), a.size()), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShotAtEverySplit) {
  const std::string data = "CWDS trailer bytes feed the checksum incrementally";
  const std::uint32_t whole = crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32 crc;
    crc.update(data.data(), split);
    crc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(crc.value(), whole) << "split at " << split;
  }
}

TEST(Crc32Test, ResetRestartsTheState) {
  Crc32 crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32Test, EveryBitFlipChangesTheChecksum) {
  std::vector<std::uint8_t> bytes(64);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i * 7);
  const std::uint32_t reference = crc32(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32(bytes.data(), bytes.size()), reference) << "byte " << i << " bit " << bit;
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace cw::util
