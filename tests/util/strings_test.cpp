#include "util/strings.h"

#include <gtest/gtest.h>

namespace cw::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, NoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTrimmed, DropsEmptyAndTrims) {
  auto parts = split_trimmed("  a , ,b ,  ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ToLower, Basic) { EXPECT_EQ(to_lower("AbC-09"), "abc-09"); }

TEST(StartsWithCi, Cases) {
  EXPECT_TRUE(starts_with_ci("Content-Length: 5", "content-length"));
  EXPECT_FALSE(starts_with_ci("Content", "content-length"));
  EXPECT_TRUE(starts_with_ci("x", ""));
}

TEST(ContainsCi, Cases) {
  EXPECT_TRUE(contains_ci("User-Agent: ${JNDI:ldap}", "${jndi:"));
  EXPECT_FALSE(contains_ci("abc", "abcd"));
  EXPECT_TRUE(contains_ci("abc", ""));
  EXPECT_TRUE(contains_ci("xxabyABCz", "abc"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(FormatDouble, PrecisionAndTrim) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 2, /*trim_whole=*/true), "3");
  EXPECT_EQ(format_double(3.10, 2, /*trim_whole=*/true), "3.1");
  EXPECT_EQ(format_double(0.0, 1), "0.0");
}

TEST(EscapePayload, NonPrintableAndTruncation) {
  EXPECT_EQ(escape_payload("GET /\r\n"), "GET /\\r\\n");
  EXPECT_EQ(escape_payload(std::string("\x16\x03", 2)), "\\x16\\x03");
  const std::string long_payload(100, 'a');
  const std::string escaped = escape_payload(long_payload, 10);
  EXPECT_EQ(escaped.substr(escaped.size() - 3), "...");
  EXPECT_LE(escaped.size(), 13u);
}

}  // namespace
}  // namespace cw::util
