#include "util/dict.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace cw::util {
namespace {

TEST(DictionaryTest, SortedAssignsLexicographicCodes) {
  auto dict = Dictionary::sorted({"charlie", "alpha", "bravo"});
  ASSERT_EQ(dict->size(), 3u);
  EXPECT_EQ(dict->at(0), "alpha");
  EXPECT_EQ(dict->at(1), "bravo");
  EXPECT_EQ(dict->at(2), "charlie");
  EXPECT_EQ(dict->find("alpha"), std::optional<std::uint32_t>{0});
  EXPECT_EQ(dict->find("bravo"), std::optional<std::uint32_t>{1});
  EXPECT_EQ(dict->find("charlie"), std::optional<std::uint32_t>{2});
  EXPECT_FALSE(dict->find("delta").has_value());
}

TEST(DictionaryTest, SortedCollapsesDuplicates) {
  auto dict = Dictionary::sorted({"x", "y", "x", "x", "y"});
  ASSERT_EQ(dict->size(), 2u);
  EXPECT_EQ(dict->at(0), "x");
  EXPECT_EQ(dict->at(1), "y");
}

TEST(DictionaryTest, SortedIsInsertionOrderIndependent) {
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("value-" + std::to_string(i % 57));
  std::vector<std::string> shuffled = values;
  std::mt19937 gen(42);
  std::shuffle(shuffled.begin(), shuffled.end(), gen);

  auto a = Dictionary::sorted(values);
  auto b = Dictionary::sorted(shuffled);
  ASSERT_EQ(a->size(), b->size());
  for (std::uint32_t code = 0; code < a->size(); ++code) EXPECT_EQ(a->at(code), b->at(code));
}

TEST(DictionaryTest, EncodeAssignsFirstSightCodesStably) {
  Dictionary dict;
  EXPECT_EQ(dict.encode("zulu"), 0u);
  EXPECT_EQ(dict.encode("alpha"), 1u);
  EXPECT_EQ(dict.encode("zulu"), 0u);  // seen values keep their code
  EXPECT_EQ(dict.encode("mike"), 2u);
  EXPECT_EQ(dict.encode("alpha"), 1u);
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.at(0), "zulu");
  EXPECT_EQ(dict.at(1), "alpha");
  EXPECT_EQ(dict.at(2), "mike");
}

// The v2 contract: encoding a column and decoding it through the dictionary
// reproduces the original text column exactly.
TEST(DictionaryTest, ColumnRoundTrip) {
  std::vector<std::string> column;
  for (int i = 0; i < 1000; ++i) column.push_back("AS" + std::to_string((i * 37) % 101));

  // Batch mode: sorted dictionary, then find() per cell.
  auto sorted = Dictionary::sorted(column);
  std::vector<std::uint32_t> codes;
  codes.reserve(column.size());
  for (const std::string& value : column) {
    auto code = sorted->find(value);
    ASSERT_TRUE(code.has_value());
    codes.push_back(*code);
  }
  for (std::size_t i = 0; i < column.size(); ++i) EXPECT_EQ(sorted->at(codes[i]), column[i]);

  // Stream mode: append-only encode per cell.
  Dictionary shared;
  std::vector<std::uint32_t> stream_codes;
  stream_codes.reserve(column.size());
  for (const std::string& value : column) stream_codes.push_back(shared.encode(value));
  for (std::size_t i = 0; i < column.size(); ++i)
    EXPECT_EQ(shared.at(stream_codes[i]), column[i]);
}

// Stream dictionaries only grow: codes handed out in an earlier epoch must
// survive later epochs untouched.
TEST(DictionaryTest, EncodeKeepsEarlierCodesAcrossGrowth) {
  Dictionary dict;
  std::vector<std::uint32_t> epoch1;
  for (int i = 0; i < 50; ++i) epoch1.push_back(dict.encode("e1-" + std::to_string(i)));
  const std::uint32_t size_after_epoch1 = dict.size();
  for (int i = 0; i < 500; ++i) dict.encode("e2-" + std::to_string(i));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dict.find("e1-" + std::to_string(i)), std::optional<std::uint32_t>{epoch1[i]});
    EXPECT_EQ(dict.at(epoch1[i]), "e1-" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), size_after_epoch1 + 500);
}

TEST(DictionaryTest, EmptyDictionary) {
  Dictionary dict;
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_FALSE(dict.find("anything").has_value());
  auto sorted = Dictionary::sorted({});
  EXPECT_TRUE(sorted->empty());
}

}  // namespace
}  // namespace cw::util
