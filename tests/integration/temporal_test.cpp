#include "core/temporal.h"

#include <gtest/gtest.h>

namespace cw::core {
namespace {

std::unique_ptr<ExperimentResult> run_year(topology::ScenarioYear year) {
  ExperimentConfig config;
  config.year = year;
  config.scale = 0.2;
  config.telescope_slash24s = 8;
  return Experiment(config).run();
}

TEST(TemporalStability, HeadlineConclusionsPersist2020To2021) {
  const auto y2020 = run_year(topology::ScenarioYear::k2020);
  const auto y2021 = run_year(topology::ScenarioYear::k2021);
  const TemporalReport report = compare_years(*y2020, *y2021, "2020", "2021");

  ASSERT_GE(report.metrics.size(), 7u);
  // The paper's core temporal claim: most conclusions are stable.
  EXPECT_GE(report.stable_count(), report.metrics.size() / 2);

  // The SSH-vs-Telnet ordering specifically must hold both years.
  bool found_ordering = false;
  for (const TemporalMetric& metric : report.metrics) {
    if (metric.name.find("Telnet/23 exceeds SSH/22") != std::string::npos) {
      found_ordering = true;
      EXPECT_TRUE(metric.stable);
    }
  }
  EXPECT_TRUE(found_ordering);

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("2020"), std::string::npos);
  EXPECT_NE(rendered.find("conclusions stable"), std::string::npos);
}

TEST(TemporalStability, MissingVantagesRenderAsUnmeasurable) {
  // 2022 has no GreyNoise honeypots: geo similarity is unmeasurable there,
  // so the APAC metric must come back one-sided rather than falsely stable.
  const auto y2021 = run_year(topology::ScenarioYear::k2021);
  const auto y2022 = run_year(topology::ScenarioYear::k2022);
  const TemporalReport report = compare_years(*y2021, *y2022, "2021", "2022");
  for (const TemporalMetric& metric : report.metrics) {
    if (metric.name.find("APAC") != std::string::npos) {
      EXPECT_TRUE(metric.value_a.has_value());
      EXPECT_FALSE(metric.value_b.has_value());
      EXPECT_FALSE(metric.stable);
    }
  }
}

}  // namespace
}  // namespace cw::core
