// End-to-end checks that the analysis pipeline recovers the paper's
// qualitative findings from raw simulated traffic. These are the
// reproduction's acceptance tests: each assertion corresponds to a claim in
// the paper, tested on a moderately sized run.
#include <gtest/gtest.h>

#include "analysis/geography.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "analysis/overlap.h"
#include "analysis/protocols.h"
#include "analysis/structure.h"
#include "core/experiment.h"

namespace cw::core {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.scale = 0.5;
    config.telescope_slash24s = 16;
    result_ = Experiment(config).run().release();
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult& r() { return *result_; }
  static ExperimentResult* result_;

  static std::optional<double> cloud_overlap(net::Port port) {
    const auto rows = analysis::scanner_overlap(
        r().store(), r().deployment(), {port},
        {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
    return rows.front().tel_cloud_over_cloud;
  }
};

ExperimentResult* PaperClaims::result_ = nullptr;

// Table 8: Telnet scanners do not discriminate against the telescope;
// SSH-port scanners avoid it hardest.
TEST_F(PaperClaims, TelescopeAvoidanceOrdering) {
  const auto telnet = cloud_overlap(23);
  const auto ssh = cloud_overlap(22);
  const auto ssh_alt = cloud_overlap(2222);
  ASSERT_TRUE(telnet && ssh && ssh_alt);
  EXPECT_GT(*telnet, 0.75);   // paper: 91%
  EXPECT_LT(*ssh, 0.35);      // paper: 13%
  EXPECT_LT(*ssh_alt, 0.40);  // paper: 9%
  EXPECT_GT(*telnet, *ssh);
}

// Table 9: fewer than a third of SSH attackers appear in the telescope,
// while most Telnet attackers do.
TEST_F(PaperClaims, AttackersOnSshPortsAvoidTelescope) {
  const auto rows = analysis::attacker_overlap(
      r().store(), r().deployment(), r().classifier(), {22, 23},
      {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_TRUE(rows[0].tel_over_malicious_cloud.has_value());
  ASSERT_TRUE(rows[1].tel_over_malicious_cloud.has_value());
  EXPECT_LT(*rows[0].tel_over_malicious_cloud, 0.35);  // paper: 7.5%
  EXPECT_GT(*rows[1].tel_over_malicious_cloud, 0.70);  // paper: 94%
}

// Section 5.2: the vast majority of cloud scanners also scan the education
// networks.
TEST_F(PaperClaims, CloudScannersAlsoTargetEducation) {
  const auto rows = analysis::scanner_overlap(
      r().store(), r().deployment(), {23, 80},
      {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
  for (const auto& row : rows) {
    ASSERT_TRUE(row.cloud_edu_over_cloud.has_value());
    EXPECT_GT(*row.cloud_edu_over_cloud, 0.35) << row.port;
  }
}

// Table 10: a significantly different set of ASes targets the telescope
// compared to cloud networks, with a large effect on SSH.
TEST_F(PaperClaims, TelescopeAsesDiffer) {
  const auto pairs = analysis::telescope_cloud_pairs(r().deployment());
  ASSERT_FALSE(pairs.empty());
  const auto comparison = analysis::compare_vantage_pairs(
      r().store(), r().deployment(), pairs, analysis::TrafficScope::kSsh22,
      analysis::Characteristic::kTopAs, r().classifier());
  EXPECT_GT(comparison.pairs_different, 0u);
  EXPECT_GT(comparison.avg_phi, 0.3);
}

// Table 7: scanners rarely discriminate between education networks.
TEST_F(PaperClaims, EducationNetworksLookAlike) {
  const auto pairs = analysis::edu_edu_pairs(r().deployment());
  ASSERT_EQ(pairs.size(), 1u);
  int different = 0;
  for (const auto scope :
       {analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
        analysis::TrafficScope::kHttp80}) {
    const auto comparison = analysis::compare_vantage_pairs(
        r().store(), r().deployment(), pairs, scope, analysis::Characteristic::kTopAs,
        r().classifier());
    different += static_cast<int>(comparison.pairs_different);
  }
  EXPECT_LE(different, 1);
}

// Section 4.1 / Table 2: a substantial share of neighborhoods receives a
// significantly different set of top ASes; password distributions differ
// far less often on SSH.
TEST_F(PaperClaims, NeighborhoodsDifferInAsesMoreThanPasswords) {
  const auto as_summary = analysis::analyze_neighborhoods(
      r().store(), r().deployment(), analysis::TrafficScope::kSsh22,
      analysis::Characteristic::kTopAs, r().classifier());
  const auto pwd_summary = analysis::analyze_neighborhoods(
      r().store(), r().deployment(), analysis::TrafficScope::kSsh22,
      analysis::Characteristic::kTopPassword, r().classifier());
  EXPECT_GT(as_summary.pct_different, 20.0);
  EXPECT_LT(pwd_summary.pct_different, as_summary.pct_different);
}

// Section 5.1 / Table 5: Asia-Pacific region pairs differ in HTTP payloads
// far more often than US pairs.
TEST_F(PaperClaims, AsiaPacificPayloadDivergence) {
  const auto similarity = analysis::geo_similarity(
      r().store(), r().deployment(), analysis::TrafficScope::kHttpAllPorts,
      analysis::Characteristic::kTopPayload, r().classifier());
  const double us = similarity.pct_similar(analysis::PairGroup::kUs);
  const double apac = similarity.pct_similar(analysis::PairGroup::kApac);
  EXPECT_LT(apac, us);
  EXPECT_LT(apac, 80.0);  // paper: 20% similar
}

// Section 5.1: the AWS Australia region's Telnet credentials are dominated
// by the Huawei-targeting regional dictionary.
TEST_F(PaperClaims, AwsAustraliaTelnetUsernames) {
  const auto most = analysis::most_different_region(
      r().store(), r().deployment(), topology::Provider::kAws,
      analysis::TrafficScope::kTelnet23, analysis::Characteristic::kTopUsername,
      r().classifier());
  ASSERT_TRUE(most.any_significant);
  EXPECT_EQ(most.region_code, "AP-AU");
}

// Section 6 / Table 11: at least 15% of port-80/8080 scanners speak
// something other than HTTP, led by TLS.
TEST_F(PaperClaims, UnexpectedProtocolsOnHttpPorts) {
  analysis::ProtocolOptions options;
  options.oracle = &r().oracle();
  const auto rows = analysis::protocol_breakdown(r().store(), r().deployment(), options);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GE(row.pct_unexpected, 10.0) << row.port;
    ASSERT_FALSE(row.unexpected_shares.empty());
    EXPECT_EQ(row.unexpected_shares.front().protocol, net::Protocol::kTls);
  }
}

// Section 4.2 / Figure 1b: scanners avoid .255 addresses on port 445.
TEST_F(PaperClaims, BroadcastAvoidanceOnSmb) {
  const auto counts = analysis::telescope_address_counts(r().store(), r().deployment(), 445);
  ASSERT_FALSE(counts.empty());
  const topology::VantagePoint* telescope = nullptr;
  for (const auto& vp : r().deployment().vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) telescope = &vp;
  }
  const auto stats = analysis::structure_stats(counts, *telescope);
  EXPECT_GT(stats.avoidance_last_255(), 2.0);  // paper: ~3.5-9x
}

// Section 4.2 / Figure 1a: the first address of a /16 is over-targeted on
// port 22.
TEST_F(PaperClaims, FirstOfSlash16PreferenceOnSsh) {
  const auto counts = analysis::telescope_address_counts(r().store(), r().deployment(), 22);
  ASSERT_FALSE(counts.empty());
  const topology::VantagePoint* telescope = nullptr;
  for (const auto& vp : r().deployment().vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) telescope = &vp;
  }
  const auto stats = analysis::structure_stats(counts, *telescope);
  EXPECT_GT(stats.preference_first_16(), 1.05);
}

// Section 3.2: a meaningful share of traffic to 22/23 never attempts
// authentication, and most HTTP/80 payloads are not exploits.
TEST_F(PaperClaims, MaliciousnessFractions) {
  std::uint64_t ssh_total = 0, ssh_auth = 0, http_total = 0, http_malicious = 0;
  for (const capture::SessionRecord& record : r().store().records()) {
    const bool observable = record.payload_id != capture::kNoPayload ||
                            record.credential_id != capture::kNoCredential;
    if (!observable) continue;
    if (record.port == 22) {
      ++ssh_total;
      if (record.credential_id != capture::kNoCredential) ++ssh_auth;
    } else if (record.port == 80 && record.payload_id != capture::kNoPayload) {
      ++http_total;
      if (r().classifier().classify(record, r().store()) ==
          analysis::MeasuredIntent::kMalicious) {
        ++http_malicious;
      }
    }
  }
  ASSERT_GT(ssh_total, 0u);
  ASSERT_GT(http_total, 0u);
  const double ssh_non_auth = 1.0 - static_cast<double>(ssh_auth) / ssh_total;
  const double http_benign = 1.0 - static_cast<double>(http_malicious) / http_total;
  EXPECT_GT(ssh_non_auth, 0.05);  // some recon traffic exists...
  EXPECT_LT(ssh_non_auth, 0.70);  // ...but auth attempts dominate (paper: 24% non-auth)
  EXPECT_GT(http_benign, 0.50);   // most HTTP is not exploit traffic (paper: 75%)
}

}  // namespace
}  // namespace cw::core
