#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/tables.h"

namespace cw::core {
namespace {

// One small shared experiment run for the whole suite (runs take seconds;
// the assertions are cheap).
class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.scale = 0.15;
    config.telescope_slash24s = 8;
    result_ = Experiment(config).run().release();
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static const ExperimentResult& result() { return *result_; }
  static ExperimentResult* result_;
};

ExperimentResult* ExperimentTest::result_ = nullptr;

TEST_F(ExperimentTest, ProducesTraffic) {
  EXPECT_GT(result().store().size(), 10000u);
  EXPECT_GT(result().events_processed(), 0u);
}

TEST_F(ExperimentTest, AllRecordsInsideObservationWindow) {
  for (const capture::SessionRecord& record : result().store().records()) {
    ASSERT_GE(record.time, 0);
    ASSERT_LT(record.time, util::kWeek);
  }
}

TEST_F(ExperimentTest, TelescopeRecordsHaveNoPayloadOrHandshake) {
  for (const capture::SessionRecord& record : result().store().records()) {
    if (result().deployment().at(record.vantage).type != topology::NetworkType::kTelescope) {
      continue;
    }
    ASSERT_FALSE(record.handshake_completed);
    ASSERT_EQ(record.payload_id, capture::kNoPayload);
    ASSERT_EQ(record.credential_id, capture::kNoCredential);
  }
}

TEST_F(ExperimentTest, GreyNoiseRecordsStayOnOpenPorts) {
  for (const capture::SessionRecord& record : result().store().records()) {
    const topology::VantagePoint& vp = result().deployment().at(record.vantage);
    if (vp.collection != topology::CollectionMethod::kGreyNoise) continue;
    ASSERT_TRUE(vp.listens_on(record.port)) << vp.name << " port " << record.port;
  }
}

TEST_F(ExperimentTest, CredentialsOnlyOnCowriePorts) {
  for (const capture::SessionRecord& record : result().store().records()) {
    if (record.credential_id == capture::kNoCredential) continue;
    ASSERT_TRUE(capture::is_cowrie_port(record.port)) << record.port;
    ASSERT_EQ(result().deployment().at(record.vantage).collection,
              topology::CollectionMethod::kGreyNoise);
  }
}

TEST_F(ExperimentTest, DestinationsMatchVantageAddresses) {
  // Spot-check a sample: the destination address must belong to the record's
  // vantage point at the record's neighbor index.
  const auto& records = result().store().records();
  for (std::size_t i = 0; i < records.size(); i += 997) {
    const capture::SessionRecord& record = records[i];
    const topology::VantagePoint& vp = result().deployment().at(record.vantage);
    ASSERT_LT(record.neighbor, vp.addresses.size());
    ASSERT_EQ(vp.addresses[record.neighbor].value(), record.dst);
  }
}

TEST_F(ExperimentTest, SearchEnginesIndexedCloudServices) {
  EXPECT_GT(result().censys().live_size(), 100u);
  EXPECT_GT(result().shodan().live_size(), 100u);
}

TEST_F(ExperimentTest, TelescopeNeverEntersIndex) {
  for (const topology::VantagePoint& vp : result().deployment().vantage_points()) {
    if (vp.type != topology::NetworkType::kTelescope) continue;
    for (std::size_t i = 0; i < vp.addresses.size(); i += 64) {
      ASSERT_FALSE(result().censys().ever_indexed(vp.addresses[i], 22));
      ASSERT_FALSE(result().censys().ever_indexed(vp.addresses[i], 80));
    }
  }
}

TEST_F(ExperimentTest, EveryActorInGroundTruth) {
  const auto truth = result().population().ground_truth();
  for (const capture::SessionRecord& record : result().store().records()) {
    ASSERT_TRUE(truth.contains(record.actor)) << record.actor;
  }
}

TEST_F(ExperimentTest, TableRenderersProduceOutput) {
  EXPECT_GT(render_table1(result()).size(), 100u);
  EXPECT_GT(render_table6(result()).size(), 20u);
  EXPECT_GT(render_table8(result()).size(), 100u);
  EXPECT_GT(render_sec32(result()).size(), 100u);
  EXPECT_GT(render_figure1(result(), 22).size(), 50u);
}

TEST(ExperimentDeterminism, SameSeedSameTraffic) {
  ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 2;
  const auto a = Experiment(config).run();
  const auto b = Experiment(config).run();
  ASSERT_EQ(a->store().size(), b->store().size());
  for (std::size_t i = 0; i < a->store().size(); i += 101) {
    const auto& ra = a->store().records()[i];
    const auto& rb = b->store().records()[i];
    ASSERT_EQ(ra.time, rb.time);
    ASSERT_EQ(ra.src, rb.src);
    ASSERT_EQ(ra.dst, rb.dst);
    ASSERT_EQ(ra.port, rb.port);
    ASSERT_EQ(ra.actor, rb.actor);
  }
}

TEST(ExperimentDeterminism, DifferentSeedDifferentTraffic) {
  ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 2;
  const auto a = Experiment(config).run();
  config.seed ^= 0x1234;
  const auto b = Experiment(config).run();
  EXPECT_NE(a->store().size(), b->store().size());
}

TEST(ExperimentConfigKnobs, CrawlDisabledMeansNoEngineTraffic) {
  ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 2;
  config.crawl_interval = 0;
  const auto result = Experiment(config).run();
  for (const capture::SessionRecord& record : result->store().records()) {
    ASSERT_NE(record.actor, agents::Population::kCensysActorId);
    ASSERT_NE(record.actor, agents::Population::kShodanActorId);
  }
  EXPECT_EQ(result->censys().live_size(), 0u);
}

TEST(ExperimentConfigKnobs, TelescopeSinkReceivesTelescopeTraffic) {
  ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 2;
  std::uint64_t sunk = 0;
  config.telescope_sink = [&sunk](const capture::ScanEvent&, const topology::Target&) {
    ++sunk;
    return true;
  };
  const auto result = Experiment(config).run();
  EXPECT_GT(sunk, 0u);
  for (const capture::SessionRecord& record : result->store().records()) {
    ASSERT_NE(result->deployment().at(record.vantage).type,
              topology::NetworkType::kTelescope);
  }
}

}  // namespace
}  // namespace cw::core
