// Smoke and structure tests for the table renderers: every renderer must
// produce well-formed output on a small run, and Table 3's markers must
// track the leak results they render.
#include "core/tables.h"

#include <gtest/gtest.h>

namespace cw::core {
namespace {

class TablesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.scale = 0.1;
    config.telescope_slash24s = 4;
    result_ = Experiment(config).run().release();
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ExperimentResult& r() { return *result_; }
  static ExperimentResult* result_;
};

ExperimentResult* TablesTest::result_ = nullptr;

TEST_F(TablesTest, EveryRendererProducesATable) {
  for (const auto& [name, text] :
       std::vector<std::pair<const char*, std::string>>{{"t1", render_table1(r())},
                                                        {"t2", render_table2(r())},
                                                        {"t4", render_table4(r())},
                                                        {"t5", render_table5(r())},
                                                        {"t6", render_table6(r())},
                                                        {"t7", render_table7(r())},
                                                        {"t8", render_table8(r())},
                                                        {"t9", render_table9(r())},
                                                        {"t10", render_table10(r())},
                                                        {"t11", render_table11(r())},
                                                        {"t17", render_table17(r())}}) {
    EXPECT_GT(text.size(), 50u) << name;
    EXPECT_NE(text.find('|'), std::string::npos) << name;
    EXPECT_EQ(text.find("nan"), std::string::npos) << name;
  }
}

TEST_F(TablesTest, Table1ListsEveryNetworkRow) {
  const std::string table = render_table1(r());
  for (const char* row : {"Hurricane Electric", "AWS", "Azure", "Google", "Linode",
                          "Stanford/US-West", "Merit/US-East", "Orion"}) {
    EXPECT_NE(table.find(row), std::string::npos) << row;
  }
}

TEST_F(TablesTest, Table11And17DifferOnlyInReputationColumns) {
  const std::string with_oracle = render_table11(r());
  const std::string without = render_table17(r());
  EXPECT_NE(with_oracle.find("% Malicious"), std::string::npos);
  EXPECT_EQ(without.find("% Malicious"), std::string::npos);
  EXPECT_NE(without.find("Breakdown"), std::string::npos);
}

TEST_F(TablesTest, Sec32MentionsPaperBaselines) {
  const std::string text = render_sec32(r());
  EXPECT_NE(text.find("paper: 34%"), std::string::npos);
  EXPECT_NE(text.find("paper: 24%"), std::string::npos);
  EXPECT_NE(text.find("paper: 75%"), std::string::npos);
}

TEST_F(TablesTest, Figure1ReportsStructureAndPeak) {
  const std::string text = render_figure1(r(), 22);
  EXPECT_NE(text.find("rolling avg"), std::string::npos);
  EXPECT_NE(text.find("avoidance"), std::string::npos);
  EXPECT_NE(text.find("peak: offset"), std::string::npos);
}

TEST(Table3Render, MarkersTrackSignificance) {
  analysis::LeakExperimentResult leak;
  analysis::LeakCell significant;
  significant.port = 80;
  significant.condition = analysis::LeakCondition::kCensysLeaked;
  significant.fold_all = 7.7;
  significant.fold_malicious = 4.0;
  significant.mwu_all = true;
  significant.mwu_malicious = false;
  significant.ks_all = true;
  leak.cells.push_back(significant);

  analysis::LeakCell insignificant;
  insignificant.port = 22;
  insignificant.condition = analysis::LeakCondition::kShodanLeaked;
  insignificant.fold_all = 1.1;
  leak.cells.push_back(insignificant);

  const std::string table = render_table3(leak);
  EXPECT_NE(table.find("**7.7***"), std::string::npos);  // bold + KS star
  EXPECT_NE(table.find("| 4.0"), std::string::npos);     // not bolded
  EXPECT_NE(table.find("1.1"), std::string::npos);
  EXPECT_EQ(table.find("**1.1**"), std::string::npos);
}

}  // namespace
}  // namespace cw::core
