// Behavioral tests for the ExperimentConfig knobs not covered elsewhere:
// oracle unknown fraction, scale monotonicity, duration, and year wiring.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace cw::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 2;
  return config;
}

TEST(ConfigKnobs, ScaleMonotonicallyIncreasesTraffic) {
  ExperimentConfig small = tiny_config();
  ExperimentConfig large = tiny_config();
  large.scale = 0.2;
  const auto small_run = Experiment(small).run();
  const auto large_run = Experiment(large).run();
  EXPECT_GT(large_run->store().size(), small_run->store().size());
  EXPECT_GT(large_run->population().size(), small_run->population().size());
}

TEST(ConfigKnobs, ShorterDurationMeansFewerRecords) {
  ExperimentConfig week = tiny_config();
  ExperimentConfig day = tiny_config();
  day.duration = util::kDay;
  const auto week_run = Experiment(week).run();
  const auto day_run = Experiment(day).run();
  EXPECT_LT(day_run->store().size(), week_run->store().size());
  for (const auto& record : day_run->store().records()) {
    ASSERT_LT(record.time, util::kDay);
  }
}

TEST(ConfigKnobs, OracleUnknownFractionExtremes) {
  ExperimentConfig omniscient = tiny_config();
  omniscient.oracle_unknown_fraction = 0.0;
  const auto run = Experiment(omniscient).run();
  const auto truth = run->population().ground_truth();
  for (const auto& [actor, malicious] : truth) {
    const analysis::Reputation label = run->oracle().label(actor);
    ASSERT_NE(label, analysis::Reputation::kUnknown);
    ASSERT_EQ(label == analysis::Reputation::kMalicious, malicious);
  }

  ExperimentConfig blind = tiny_config();
  blind.oracle_unknown_fraction = 1.0;
  const auto blind_run = Experiment(blind).run();
  for (const auto& [actor, malicious] : blind_run->population().ground_truth()) {
    ASSERT_EQ(blind_run->oracle().label(actor), analysis::Reputation::kUnknown);
  }
}

TEST(ConfigKnobs, YearSelectsDeployment) {
  ExperimentConfig config = tiny_config();
  config.year = topology::ScenarioYear::k2022;
  const auto run = Experiment(config).run();
  EXPECT_TRUE(
      run->deployment().with_collection(topology::CollectionMethod::kGreyNoise).empty());
  EXPECT_FALSE(
      run->deployment().with_collection(topology::CollectionMethod::kHoneytrap).empty());
}

TEST(ConfigKnobs, TelescopeSizeFlowsThrough) {
  ExperimentConfig config = tiny_config();
  config.telescope_slash24s = 3;
  const auto run = Experiment(config).run();
  const auto telescope_ids = run->deployment().with_type(topology::NetworkType::kTelescope);
  ASSERT_EQ(telescope_ids.size(), 1u);
  EXPECT_EQ(run->deployment().at(telescope_ids.front()).addresses.size(), 3u * 256u);
}

}  // namespace
}  // namespace cw::core
