#include "analysis/leak.h"

#include <gtest/gtest.h>

namespace cw::analysis {
namespace {

class LeakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LeakExperimentConfig config;
    config.population_scale = 0.6;
    result_ = new LeakExperimentResult(run_leak_experiment(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const LeakExperimentResult& result() { return *result_; }
  static LeakExperimentResult* result_;
};

LeakExperimentResult* LeakTest::result_ = nullptr;

TEST_F(LeakTest, ProducesAllCells) {
  // 3 services x (3 leak conditions + control) rows.
  EXPECT_EQ(result().cells.size(), 12u);
  for (net::Port port : {22, 23, 80}) {
    for (auto condition : {LeakCondition::kControl, LeakCondition::kCensysLeaked,
                           LeakCondition::kShodanLeaked, LeakCondition::kPreviouslyLeaked}) {
      EXPECT_NE(result().find(port, condition), nullptr)
          << port << " " << leak_condition_name(condition);
    }
  }
  EXPECT_EQ(result().find(443, LeakCondition::kControl), nullptr);
}

TEST_F(LeakTest, ControlGroupReceivesBaselineTraffic) {
  for (int service = 0; service < 3; ++service) {
    EXPECT_GT(result().control_hourly_mean[service], 0.0) << service;
  }
}

TEST_F(LeakTest, LeakedServicesAttractMoreTraffic) {
  // The paper's headline: every leaked condition sees a multi-fold traffic
  // increase on its leaked service.
  for (net::Port port : {22, 23, 80}) {
    for (auto condition : {LeakCondition::kCensysLeaked, LeakCondition::kShodanLeaked}) {
      const LeakCell* cell = result().find(port, condition);
      ASSERT_NE(cell, nullptr);
      EXPECT_GT(cell->fold_all, 1.5) << port << " " << leak_condition_name(condition);
    }
  }
}

TEST_F(LeakTest, PreviouslyLeakedStillAttractsAttackers) {
  const LeakCell* cell = result().find(80, LeakCondition::kPreviouslyLeaked);
  ASSERT_NE(cell, nullptr);
  EXPECT_GT(cell->fold_all, 1.5);
  EXPECT_GT(cell->fold_malicious, 1.5);
}

TEST_F(LeakTest, EngineProtocolAsymmetry) {
  // SSH attackers rely on Shodan more than Censys; HTTP attackers on Censys
  // more than Shodan (Table 3).
  const LeakCell* ssh_shodan = result().find(22, LeakCondition::kShodanLeaked);
  const LeakCell* ssh_censys = result().find(22, LeakCondition::kCensysLeaked);
  ASSERT_NE(ssh_shodan, nullptr);
  ASSERT_NE(ssh_censys, nullptr);
  EXPECT_GT(ssh_shodan->fold_malicious, ssh_censys->fold_malicious);

  const LeakCell* http_censys = result().find(80, LeakCondition::kCensysLeaked);
  const LeakCell* http_shodan = result().find(80, LeakCondition::kShodanLeaked);
  ASSERT_NE(http_censys, nullptr);
  ASSERT_NE(http_shodan, nullptr);
  EXPECT_GT(http_censys->fold_malicious, http_shodan->fold_malicious);
}

TEST_F(LeakTest, TelnetReliesOnEnginesLess) {
  // Telnet folds are positive but smaller than the HTTP folds.
  const LeakCell* telnet = result().find(23, LeakCondition::kCensysLeaked);
  const LeakCell* http = result().find(80, LeakCondition::kCensysLeaked);
  ASSERT_NE(telnet, nullptr);
  ASSERT_NE(http, nullptr);
  EXPECT_GT(http->fold_malicious, telnet->fold_malicious);
}

TEST_F(LeakTest, SignificanceMarkersAccompanyLargeFolds) {
  // A >3x fold must be flagged by at least one test. Spike-concentrated
  // traffic can evade the rank-based MWU while still shifting the KS
  // distribution — exactly the unmarked-fold pattern Table 3 shows — so
  // the assertion accepts either marker.
  for (const LeakCell& cell : result().cells) {
    if (cell.condition == LeakCondition::kControl) continue;
    if (cell.fold_all > 3.0) {
      EXPECT_TRUE(cell.mwu_all || cell.ks_all)
          << cell.port << " " << leak_condition_name(cell.condition);
    }
  }
}

TEST_F(LeakTest, LeakedServicesSeeMoreSpikes) {
  const LeakCell* control = result().find(22, LeakCondition::kControl);
  const LeakCell* leaked = result().find(22, LeakCondition::kShodanLeaked);
  ASSERT_NE(control, nullptr);
  ASSERT_NE(leaked, nullptr);
  EXPECT_GE(leaked->spikes_per_ip, control->spikes_per_ip);
}

TEST_F(LeakTest, LeakedServicesSeeMoreUniquePasswords) {
  // "attackers will attempt on average 3 times more unique SSH passwords on
  // leaked compared to non-leaked services."
  const LeakCell* control = result().find(22, LeakCondition::kControl);
  const LeakCell* leaked = result().find(22, LeakCondition::kShodanLeaked);
  ASSERT_NE(control, nullptr);
  ASSERT_NE(leaked, nullptr);
  EXPECT_GT(leaked->unique_passwords_per_ip, control->unique_passwords_per_ip);
}

TEST(LeakExperiment, DeterministicForSeed) {
  LeakExperimentConfig config;
  config.population_scale = 0.2;
  const LeakExperimentResult a = run_leak_experiment(config);
  const LeakExperimentResult b = run_leak_experiment(config);
  ASSERT_EQ(a.total_records, b.total_records);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].fold_all, b.cells[i].fold_all);
  }
}

}  // namespace
}  // namespace cw::analysis
