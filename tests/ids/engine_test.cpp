#include "ids/engine.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::ids {
namespace {

RuleEngine engine_with(std::string_view rule_text) {
  RuleEngine engine;
  auto rule = parse_rule(rule_text);
  EXPECT_TRUE(rule.has_value()) << rule_text;
  if (rule) engine.add(std::move(*rule));
  return engine;
}

TEST(RuleEngine, RawContentMatch) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"needle"; sid:1;))");
  EXPECT_TRUE(engine.matches("hay needle stack", 80));
  EXPECT_FALSE(engine.matches("haystack", 80));
}

TEST(RuleEngine, NocaseMatch) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"JNDI"; nocase; sid:1;))");
  EXPECT_TRUE(engine.matches("${jndi:ldap}", 80));
  EXPECT_TRUE(engine.matches("${JnDi:ldap}", 80));
}

TEST(RuleEngine, CaseSensitiveByDefault) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"Exact"; sid:1;))");
  EXPECT_TRUE(engine.matches("Exact", 80));
  EXPECT_FALSE(engine.matches("exact", 80));
}

TEST(RuleEngine, PortConstraint) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any [5555] (msg:"m"; content:"x"; sid:1;))");
  EXPECT_TRUE(engine.matches("x", 5555));
  EXPECT_FALSE(engine.matches("x", 80));
}

TEST(RuleEngine, TransportConstraint) {
  const RuleEngine engine = engine_with(
      R"(alert udp any any -> any any (msg:"m"; content:"x"; sid:1;))");
  EXPECT_TRUE(engine.matches("x", 123, net::Transport::kUdp));
  EXPECT_FALSE(engine.matches("x", 123, net::Transport::kTcp));
}

TEST(RuleEngine, NegatedContent) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"attack"; content:!"whitelisted"; sid:1;))");
  EXPECT_TRUE(engine.matches("attack payload", 80));
  EXPECT_FALSE(engine.matches("attack whitelisted", 80));
}

TEST(RuleEngine, HttpUriBufferOnlyMatchesUri) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"/evil"; http_uri; sid:1;))");
  EXPECT_TRUE(engine.matches("GET /evil HTTP/1.1\r\n\r\n", 80));
  // Token present in the body, not the URI: must not fire.
  EXPECT_FALSE(engine.matches("POST /ok HTTP/1.1\r\n\r\n/evil", 80));
  // Non-HTTP payload: HTTP buffers are empty, rule cannot fire.
  EXPECT_FALSE(engine.matches("/evil", 80));
}

TEST(RuleEngine, HttpMethodAndBodyBuffers) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"POST"; http_method; content:"admin"; http_client_body; sid:1;))");
  EXPECT_TRUE(engine.matches("POST /x HTTP/1.1\r\n\r\nuser=admin", 80));
  EXPECT_FALSE(engine.matches("GET /x HTTP/1.1\r\n\r\nuser=admin", 80));
  EXPECT_FALSE(engine.matches("POST /x HTTP/1.1\r\n\r\nuser=guest", 80));
}

TEST(RuleEngine, HttpHeaderBuffer) {
  const RuleEngine engine = engine_with(
      R"(alert tcp any any -> any any (msg:"m"; content:"evil-agent"; http_header; sid:1;))");
  EXPECT_TRUE(engine.matches("GET / HTTP/1.1\r\nUser-Agent: evil-agent\r\n\r\n", 80));
  EXPECT_FALSE(engine.matches("GET / HTTP/1.1\r\nUser-Agent: ok\r\n\r\nevil-agent", 80));
}

TEST(RuleEngine, EvaluateReturnsAllFiringRules) {
  RuleEngine engine;
  engine.load(
      "alert tcp any any -> any any (msg:\"one\"; content:\"x\"; sid:1;)\n"
      "alert tcp any any -> any any (msg:\"two\"; content:\"x\"; classtype:trojan-activity; sid:2;)\n"
      "alert tcp any any -> any any (msg:\"miss\"; content:\"zzz\"; sid:3;)\n");
  const auto alerts = engine.evaluate("x", 80);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].sid, 1u);
  EXPECT_EQ(alerts[1].sid, 2u);
  EXPECT_EQ(alerts[1].class_type, ClassType::kTrojanActivity);
}

TEST(RuleEngine, LoadSkipsCommentsAndCollectsBadLines) {
  RuleEngine engine;
  std::vector<std::string> skipped;
  const std::size_t loaded = engine.load(
      "# comment\n"
      "\n"
      "alert tcp any any -> any any (msg:\"ok\"; content:\"x\"; sid:1;)\n"
      "this is not a rule\n",
      &skipped);
  EXPECT_EQ(loaded, 1u);
  EXPECT_EQ(engine.rule_count(), 1u);
  ASSERT_EQ(skipped.size(), 1u);
}

TEST(CuratedRuleset, LoadsCleanly) {
  const RuleEngine engine = curated_engine();
  EXPECT_GE(engine.rule_count(), 15u);
}

// The pairing contract: every exploit payload in the library must trip the
// curated rule set on the ports its campaigns use.
class CuratedCatchesExploit : public ::testing::TestWithParam<proto::ExploitKind> {};

TEST_P(CuratedCatchesExploit, Fires) {
  static const RuleEngine engine = curated_engine();
  const proto::ExploitKind kind = GetParam();
  net::Port port = 6379;
  if (exploit_protocol(kind) == net::Protocol::kHttp) port = 80;
  if (kind == proto::ExploitKind::kAdbShell) port = 5555;
  if (kind == proto::ExploitKind::kSipRegister) port = 5060;
  for (std::uint32_t variant : {0u, 5u, 123u}) {
    EXPECT_TRUE(engine.matches(proto::exploit_payload(kind, variant), port))
        << proto::exploit_name(kind) << " variant " << variant;
  }
}

std::vector<proto::ExploitKind> all_exploit_kinds() {
  std::vector<proto::ExploitKind> kinds;
  for (std::size_t i = 0; i < proto::kExploitKindCount; ++i) {
    kinds.push_back(static_cast<proto::ExploitKind>(i));
  }
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(AllExploits, CuratedCatchesExploit,
                         ::testing::ValuesIn(all_exploit_kinds()),
                         [](const auto& info) {
                           std::string name(proto::exploit_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// And the inverse contract: benign probes must not fire.
class CuratedPassesBenign : public ::testing::TestWithParam<net::Protocol> {};

TEST_P(CuratedPassesBenign, Silent) {
  static const RuleEngine engine = curated_engine();
  const net::Port port = net::ports_assigned_to(GetParam()).empty()
                             ? net::Port{80}
                             : net::ports_assigned_to(GetParam()).front();
  EXPECT_FALSE(engine.matches(proto::probe_payload(GetParam()), port))
      << net::protocol_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Probes, CuratedPassesBenign,
                         ::testing::Values(net::Protocol::kHttp, net::Protocol::kTls,
                                           net::Protocol::kSsh, net::Protocol::kTelnet,
                                           net::Protocol::kSmb, net::Protocol::kRtsp,
                                           net::Protocol::kSip, net::Protocol::kNtp,
                                           net::Protocol::kRdp, net::Protocol::kFox,
                                           net::Protocol::kSql),
                         [](const auto& info) {
                           return std::string(net::protocol_name(info.param));
                         });

TEST(CuratedRuleset, BenignHttpVariantsPass) {
  const RuleEngine engine = curated_engine();
  for (std::uint32_t v = 0; v < 80; ++v) {
    EXPECT_FALSE(engine.matches(proto::http_benign_request(v), 80)) << v;
  }
}

TEST(CuratedRuleset, RedisPingPasses) {
  const RuleEngine engine = curated_engine();
  EXPECT_FALSE(engine.matches(proto::redis_ping(), 6379));
}

}  // namespace
}  // namespace cw::ids
