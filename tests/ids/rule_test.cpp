#include "ids/rule.h"

#include <gtest/gtest.h>

namespace cw::ids {
namespace {

TEST(ParseRule, MinimalValidRule) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any 80 (msg:"test"; content:"abc"; classtype:misc-activity; sid:1;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->sid, 1u);
  EXPECT_EQ(rule->msg, "test");
  EXPECT_EQ(rule->class_type, ClassType::kMiscActivity);
  ASSERT_EQ(rule->contents.size(), 1u);
  EXPECT_EQ(rule->contents[0].needle, "abc");
  EXPECT_EQ(rule->dst_ports, std::vector<net::Port>{80});
}

TEST(ParseRule, AnyPortAndPortList) {
  const auto any = parse_rule(
      R"(alert tcp any any -> any any (msg:"m"; content:"x"; sid:2;))");
  ASSERT_TRUE(any.has_value());
  EXPECT_TRUE(any->dst_ports.empty());
  EXPECT_TRUE(any->applies_to_port(1234));

  const auto list = parse_rule(
      R"(alert tcp any any -> any [80,8080] (msg:"m"; content:"x"; sid:3;))");
  ASSERT_TRUE(list.has_value());
  EXPECT_TRUE(list->applies_to_port(80));
  EXPECT_TRUE(list->applies_to_port(8080));
  EXPECT_FALSE(list->applies_to_port(443));
}

TEST(ParseRule, HexContent) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"hex"; content:"|ff 53 4d 42|"; sid:4;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->contents[0].needle, std::string("\xff" "SMB", 4));
}

TEST(ParseRule, MixedTextAndHex) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"mix"; content:"AB|00|CD"; sid:5;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->contents[0].needle, std::string("AB\x00" "CD", 5));
}

TEST(ParseRule, NocaseAndBuffers) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"b"; content:"POST"; http_method; content:"/x"; http_uri; nocase; sid:6;))");
  ASSERT_TRUE(rule.has_value());
  ASSERT_EQ(rule->contents.size(), 2u);
  EXPECT_EQ(rule->contents[0].buffer, MatchBuffer::kHttpMethod);
  EXPECT_FALSE(rule->contents[0].nocase);
  EXPECT_EQ(rule->contents[1].buffer, MatchBuffer::kHttpUri);
  EXPECT_TRUE(rule->contents[1].nocase);
}

TEST(ParseRule, NegatedContent) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"n"; content:"good"; content:!"bad"; sid:7;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_FALSE(rule->contents[0].negated);
  EXPECT_TRUE(rule->contents[1].negated);
}

TEST(ParseRule, SemicolonInsideQuotedContent) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any any (msg:"semi"; content:"a;b"; sid:8;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->contents[0].needle, "a;b");
}

TEST(ParseRule, AllClassTypesRoundTrip) {
  for (std::size_t i = 0; i < kClassTypeCount; ++i) {
    const ClassType c = static_cast<ClassType>(i);
    const std::string text = std::string("alert tcp any any -> any any (msg:\"m\"; ") +
                             "content:\"x\"; classtype:" + std::string(class_type_name(c)) +
                             "; sid:9;)";
    const auto rule = parse_rule(text);
    ASSERT_TRUE(rule.has_value()) << class_type_name(c);
    EXPECT_EQ(rule->class_type, c);
  }
  EXPECT_FALSE(class_type_from_name("not-a-classtype").has_value());
}

TEST(ParseRule, IgnoredOptionsAccepted) {
  const auto rule = parse_rule(
      R"(alert tcp any any -> any 80 (msg:"f"; flow:established,to_server; content:"x"; depth:10; reference:cve,2021-44228; metadata:created_at 2021; sid:10; rev:3;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->rev, 3u);
}

struct BadRule {
  const char* text;
  const char* reason;
};

class ParseRuleRejects : public ::testing::TestWithParam<BadRule> {};

TEST_P(ParseRuleRejects, ReturnsError) {
  std::string error;
  EXPECT_FALSE(parse_rule(GetParam().text, &error).has_value()) << GetParam().reason;
  EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseRuleRejects,
    ::testing::Values(
        BadRule{"", "empty"},
        BadRule{"# a comment", "comment"},
        BadRule{"alert tcp any any -> any 80", "no options"},
        BadRule{R"(drop tcp any any -> any 80 (msg:"m"; content:"x"; sid:1;))", "unsupported action"},
        BadRule{R"(alert icmp any any -> any 80 (msg:"m"; content:"x"; sid:1;))", "unsupported proto"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; content:"x";))", "missing sid"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; sid:1;))", "no content"},
        BadRule{R"(alert tcp any any -> any 99999 (msg:"m"; content:"x"; sid:1;))", "bad port"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; content:"|zz|"; sid:1;))", "bad hex"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; nocase; content:"x"; sid:1;))", "nocase before content"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; content:"x"; classtype:bogus; sid:1;))", "bad classtype"},
        BadRule{R"(alert tcp any any -> any 80 (msg:"m"; content:"x"; pcre:"/a/"; sid:1;))", "unsupported option"},
        BadRule{R"(alert tcp any any any 80 (msg:"m"; content:"x"; sid:1;))", "malformed header"}));

TEST(ParseRule, UdpTransport) {
  const auto rule = parse_rule(
      R"(alert udp any any -> any 123 (msg:"ntp"; content:"|1b|"; sid:11;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->transport, net::Transport::kUdp);
}

}  // namespace
}  // namespace cw::ids
