// The stream subsystem's load-bearing invariant, tested in-process:
//
//  1. A SegmentedTableCache over any contiguous slicing of the corpus is
//     bit-identical to a cold whole-corpus CharacteristicTableCache for
//     every (vantage, scope, characteristic) — counts, tables, verdicts.
//  2. A LiveReport run over the full window renders, at its final epoch,
//     exactly the bytes of the one-shot batch report — at multiple epoch
//     slicings and worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/table_cache.h"
#include "core/experiment.h"
#include "runner/pipeline.h"
#include "runner/report.h"
#include "runner/thread_pool.h"
#include "stream/live_report.h"

namespace cw::stream {
namespace {

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 4;
  config.duration = util::kDay;
  return config;
}

const core::ExperimentResult& experiment() {
  static const std::unique_ptr<core::ExperimentResult> result = [] {
    return core::Experiment(tiny_config()).run();
  }();
  return *result;
}

constexpr analysis::TrafficScope kAllScopes[] = {
    analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
    analysis::TrafficScope::kHttp80, analysis::TrafficScope::kHttpAllPorts,
    analysis::TrafficScope::kAnyAll};

constexpr analysis::Characteristic kTableCharacteristics[] = {
    analysis::Characteristic::kTopAs, analysis::Characteristic::kTopUsername,
    analysis::Characteristic::kTopPassword, analysis::Characteristic::kTopPayload};

// Re-appends records[begin, end) of `source` into a fresh store (the same
// re-interning a live seal does when building a segment).
capture::EventStore slice_store(const capture::EventStore& source, std::size_t begin,
                                std::size_t end) {
  capture::EventStore out;
  for (std::size_t i = begin; i < end; ++i) {
    const capture::SessionRecord& record = source.records()[i];
    const std::string_view payload = record.payload_id == capture::kNoPayload
                                         ? std::string_view{}
                                         : std::string_view(source.payload(record.payload_id));
    std::optional<proto::Credential> credential;
    if (record.credential_id != capture::kNoCredential) {
      credential = source.credential(record.credential_id);
    }
    out.append(record, payload, credential);
  }
  out.freeze();
  return out;
}

class SegmentedCacheSlicing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SegmentedCacheSlicing, MatchesColdWholeCorpusCacheEverywhere) {
  const std::size_t slices = GetParam();
  const auto& result = experiment();
  const analysis::MaliciousClassifier& classifier = result.classifier();
  const capture::EventStore& corpus = result.store();
  ASSERT_GT(corpus.size(), slices);

  // Build the segments: contiguous record ranges, each with its own store
  // and frame, exactly as epoch seals would produce them.
  std::vector<std::unique_ptr<capture::EventStore>> stores;
  std::vector<std::unique_ptr<capture::SessionFrame>> frames;
  analysis::SegmentedTableCache segmented(classifier);
  for (std::size_t k = 0; k < slices; ++k) {
    const std::size_t begin = corpus.size() * k / slices;
    const std::size_t end = corpus.size() * (k + 1) / slices;
    stores.push_back(std::make_unique<capture::EventStore>(slice_store(corpus, begin, end)));
    const capture::EventStore& store = *stores.back();
    capture::SessionFrame::BuildOptions options;
    options.verdict = [&classifier, &store](const capture::SessionRecord& record) {
      switch (classifier.classify(record, store)) {
        case analysis::MeasuredIntent::kMalicious:
          return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
    frames.push_back(std::make_unique<capture::SessionFrame>(
        capture::SessionFrame::build(store, result.deployment(), std::move(options))));
    segmented.add_segment(*frames.back());
  }
  ASSERT_EQ(segmented.segment_count(), slices);

  const analysis::CharacteristicTableCache cold(result.frame(), classifier);
  runner::ThreadPool pool(2);
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    for (const analysis::TrafficScope scope : kAllScopes) {
      ASSERT_EQ(segmented.record_count(vp.id, scope), cold.record_count(vp.id, scope))
          << vp.name;
      EXPECT_EQ(segmented.malicious(vp.id, scope), cold.malicious(vp.id, scope)) << vp.name;
      for (const analysis::Characteristic characteristic : kTableCharacteristics) {
        const auto& merged = segmented.table(vp.id, scope, characteristic, &pool);
        const auto& whole = cold.table(vp.id, scope, characteristic, &pool);
        ASSERT_EQ(merged.total(), whole.total()) << vp.name;
        ASSERT_EQ(merged.distinct(), whole.distinct()) << vp.name;
        // sorted() is deterministic (count desc, lexicographic ties), so
        // element-wise equality is bit-level table equality.
        EXPECT_EQ(merged.sorted(), whole.sorted()) << vp.name;
      }
    }
  }
  // Advancing epochs kept per-segment partials: at least one per segment
  // was materialized for the queried tables.
  EXPECT_GE(segmented.segment_tables_built(), slices);
}

INSTANTIATE_TEST_SUITE_P(Slicings, SegmentedCacheSlicing, ::testing::Values(1, 3, 17));

std::vector<std::string> batch_outputs(unsigned jobs, const runner::ReportOptions& options) {
  const auto result = core::Experiment(tiny_config()).run();
  result->store().freeze();
  {
    runner::ThreadPool pool(jobs);
    static_cast<void>(result->frame(&pool));
  }
  const auto pipelines = runner::paper_report_pipelines(*result, options);
  return runner::run_pipelines(pipelines, jobs).outputs;
}

TEST(LiveReportEquivalence, FinalEpochMatchesBatchAcrossSlicingsAndJobs) {
  runner::ReportOptions options;
  options.include_leak = false;  // deterministic but heavy; not stream-dependent
  const std::vector<std::string> batch = batch_outputs(/*jobs=*/1, options);
  ASSERT_FALSE(batch.empty());

  struct Case {
    std::size_t epochs;
    std::size_t shards;
    unsigned jobs;
  };
  for (const Case c : {Case{2, 4, 1}, Case{3, 1, 2}, Case{5, 16, 2}}) {
    LiveReportConfig config;
    config.experiment = tiny_config();
    config.epochs = c.epochs;
    config.shards = c.shards;
    config.jobs = c.jobs;
    config.report = options;
    config.render_intermediate = false;
    LiveReport live(config);
    const EpochReport final_report = live.run();
    ASSERT_TRUE(final_report.rendered);
    EXPECT_FALSE(final_report.failed);
    ASSERT_EQ(final_report.outputs.size(), batch.size())
        << c.epochs << " epochs, " << c.shards << " shards";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(final_report.outputs[i], batch[i])
          << final_report.names[i] << " at " << c.epochs << " epochs, " << c.shards
          << " shards, jobs " << c.jobs;
    }
  }
}

TEST(LiveReportEquivalence, IntermediateEpochsRenderAndGrow) {
  LiveReportConfig config;
  config.experiment = tiny_config();
  config.epochs = 3;
  config.shards = 2;
  config.report.include_leak = false;
  std::vector<EpochReport> reports;
  LiveReport live(config);
  live.run([&reports](const EpochReport& report) { reports.push_back(report); });
  ASSERT_EQ(reports.size(), 3u);
  std::uint64_t previous_total = 0;
  for (std::size_t k = 0; k < reports.size(); ++k) {
    EXPECT_EQ(reports[k].epoch, k + 1);
    EXPECT_TRUE(reports[k].rendered);
    EXPECT_FALSE(reports[k].failed);
    EXPECT_EQ(reports[k].records_total, previous_total + reports[k].records_new);
    previous_total = reports[k].records_total;
    EXPECT_FALSE(reports[k].outputs.empty());
  }
  EXPECT_EQ(reports.back().now, tiny_config().duration);
}

}  // namespace
}  // namespace cw::stream
