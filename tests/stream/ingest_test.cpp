// IngestShards contract tests: shard-major seal order, snapshot
// immutability/sharing across epochs, and multi-producer thread safety
// (run under -DCW_SANITIZE=thread to verify the locking discipline).
#include "stream/ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "capture/collector.h"
#include "runner/thread_pool.h"
#include "stream/snapshot.h"
#include "topology/universe.h"

namespace cw::stream {
namespace {

topology::Deployment tiny_deployment(std::size_t vantage_points = 3) {
  topology::Deployment deployment;
  for (std::size_t v = 0; v < vantage_points; ++v) {
    topology::VantagePoint vp;
    vp.name = "vp-" + std::to_string(v);
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kHoneytrap;
    vp.addresses = {net::IPv4Addr(3, 0, static_cast<std::uint8_t>(v), 1),
                    net::IPv4Addr(3, 0, static_cast<std::uint8_t>(v), 2)};
    deployment.add(std::move(vp));
  }
  return deployment;
}

capture::SessionRecord record_at(topology::VantageId vantage, std::uint32_t src,
                                 util::SimTime time = 0) {
  capture::SessionRecord record;
  record.vantage = vantage;
  record.src = src;
  record.port = 22;
  record.time = time;
  return record;
}

TEST(IngestShards, SealDrainsShardMajor) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(3);
  // Interleave appends across shards; the seal must not preserve this
  // arrival interleaving but the shard-major order.
  ingest.append(2, record_at(2, 200), "p2", std::nullopt);
  ingest.append(0, record_at(0, 100), "p0", std::nullopt);
  ingest.append(1, record_at(1, 150), "p1", std::nullopt);
  ingest.append(0, record_at(0, 101), "p0b", std::nullopt);

  const EpochSnapshot snapshot = ingest.seal_epoch(deployment);
  ASSERT_EQ(snapshot.segments().size(), 1u);
  const capture::EventStore& store = snapshot.segments()[0]->store();
  ASSERT_EQ(store.size(), 4u);
  // Shard 0's two records in append order, then shard 1's, then shard 2's.
  EXPECT_EQ(store.records()[0].src, 100u);
  EXPECT_EQ(store.records()[1].src, 101u);
  EXPECT_EQ(store.records()[2].src, 150u);
  EXPECT_EQ(store.records()[3].src, 200u);
  EXPECT_EQ(store.payload(store.records()[0].payload_id), "p0");
  EXPECT_EQ(ingest.pending(), 0u);
}

TEST(IngestShards, ShardRoutingIsByVantage) {
  IngestShards ingest(4);
  EXPECT_EQ(ingest.shard_of(record_at(0, 1)), 0u);
  EXPECT_EQ(ingest.shard_of(record_at(5, 1)), 1u);
  EXPECT_EQ(ingest.shard_of(record_at(7, 1)), 3u);
}

TEST(IngestShards, SnapshotsShareSegmentsAndStayImmutable) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(2);
  EXPECT_EQ(ingest.snapshot().epoch(), 0u);
  EXPECT_EQ(ingest.snapshot().size(), 0u);

  ingest.append(0, record_at(0, 1), {}, std::nullopt);
  const EpochSnapshot first = ingest.seal_epoch(deployment);
  EXPECT_EQ(first.epoch(), 1u);
  EXPECT_EQ(first.size(), 1u);

  ingest.append(1, record_at(1, 2), {}, std::nullopt);
  ingest.append(1, record_at(1, 3), {}, std::nullopt);
  const EpochSnapshot second = ingest.seal_epoch(deployment);
  EXPECT_EQ(second.epoch(), 2u);
  EXPECT_EQ(second.size(), 3u);
  ASSERT_EQ(second.segments().size(), 2u);

  // Persistent sharing: epoch 2 reuses epoch 1's segment object — same
  // store, same already-built frame — and the older snapshot is untouched.
  EXPECT_EQ(second.segments()[0].get(), first.segments()[0].get());
  EXPECT_EQ(first.segments().size(), 1u);
  EXPECT_EQ(first.size(), 1u);

  // Segment bookkeeping: ids are epoch-ordered, bases are cumulative.
  EXPECT_EQ(second.segments()[0]->id(), 0u);
  EXPECT_EQ(second.segments()[1]->id(), 1u);
  EXPECT_EQ(second.segments()[0]->base(), 0u);
  EXPECT_EQ(second.segments()[1]->base(), 1u);
}

TEST(IngestShards, EmptyEpochSealsAnEmptySegment) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(2);
  const EpochSnapshot snapshot = ingest.seal_epoch(deployment);
  EXPECT_EQ(snapshot.epoch(), 1u);
  EXPECT_EQ(snapshot.size(), 0u);
  ASSERT_EQ(snapshot.segments().size(), 1u);
  EXPECT_EQ(snapshot.segments()[0]->size(), 0u);
}

TEST(IngestShards, SegmentFrameIsBuiltOnceOverTheSealedStore) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(2);
  ingest.append(0, record_at(0, 1), "payload", std::nullopt);
  ingest.append(1, record_at(1, 2), {}, std::nullopt);
  const VerdictFactory verdict = [](const capture::EventStore&) {
    return [](const capture::SessionRecord&) { return capture::SessionFrame::Verdict::kBenign; };
  };
  const EpochSnapshot snapshot = ingest.seal_epoch(deployment, verdict);
  const Segment& segment = *snapshot.segments()[0];
  EXPECT_TRUE(segment.frame().attached());
  EXPECT_EQ(segment.frame().size(), 2u);
  EXPECT_TRUE(segment.frame().has_verdicts());
  EXPECT_EQ(&segment.frame().store(), &segment.store());
  EXPECT_EQ(segment.frame().for_vantage(0).size(), 1u);
}

TEST(IngestShards, ConcurrentProducersAreDeterministicPerShardSequence) {
  // Two independent ingests fed by concurrent producers (one thread per
  // shard, so each shard's append sequence is fixed) must seal identical
  // segments. Run under TSan to verify the per-shard locking.
  const topology::Deployment deployment = tiny_deployment();
  constexpr std::size_t kShards = 4;
  constexpr std::uint32_t kPerShard = 500;

  auto sealed = [&](IngestShards& ingest) {
    std::vector<std::thread> producers;
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      producers.emplace_back([&ingest, shard] {
        for (std::uint32_t i = 0; i < kPerShard; ++i) {
          ingest.append(shard,
                        record_at(static_cast<topology::VantageId>(shard % 3),
                                  static_cast<std::uint32_t>(shard * 1000 + i),
                                  static_cast<util::SimTime>(i)),
                        i % 3 == 0 ? "probe" : "", std::nullopt);
        }
      });
    }
    // Concurrent readers of the published state while producers run.
    std::atomic<bool> stop{false};
    std::thread reader([&ingest, &stop] {
      while (!stop.load()) {
        static_cast<void>(ingest.pending());
        static_cast<void>(ingest.snapshot().size());
      }
    });
    for (std::thread& producer : producers) producer.join();
    stop.store(true);
    reader.join();
    return ingest.seal_epoch(deployment);
  };

  IngestShards a(kShards);
  IngestShards b(kShards);
  const EpochSnapshot snap_a = sealed(a);
  const EpochSnapshot snap_b = sealed(b);
  const capture::EventStore& store_a = snap_a.segments()[0]->store();
  const capture::EventStore& store_b = snap_b.segments()[0]->store();
  ASSERT_EQ(store_a.size(), kShards * kPerShard);
  ASSERT_EQ(store_a.size(), store_b.size());
  for (std::size_t i = 0; i < store_a.size(); ++i) {
    ASSERT_EQ(store_a.records()[i].src, store_b.records()[i].src) << "record " << i;
    ASSERT_EQ(store_a.records()[i].payload_id, store_b.records()[i].payload_id);
  }
}

TEST(IngestShards, ConcurrentSealersNeverLoseASegment) {
  // Regression for the lost-segment race: two sealers that both read the
  // same `previous` snapshot would each extend it and one extension would
  // silently vanish at publish. With sealers serialized, every seal_epoch
  // call must produce exactly one segment, epochs stay densely numbered, and
  // no buffered record is dropped. Run under TSan to verify the seal lock.
  const topology::Deployment deployment = tiny_deployment();
  constexpr int kRounds = 25;
  constexpr std::size_t kSealers = 2;
  constexpr std::uint32_t kRecordsPerRound = 40;

  IngestShards ingest(2);
  std::uint64_t appended = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (std::uint32_t i = 0; i < kRecordsPerRound; ++i) {
      ingest.append(i % 2, record_at(i % 3, static_cast<std::uint32_t>(appended)), {},
                    std::nullopt);
      ++appended;
    }
    // Two sealers race each other and a producer appending mid-seal.
    std::vector<std::thread> sealers;
    for (std::size_t s = 0; s < kSealers; ++s) {
      sealers.emplace_back([&ingest, &deployment] {
        static_cast<void>(ingest.seal_epoch(deployment));
      });
    }
    std::thread racer([&ingest, appended] {
      for (std::uint32_t i = 0; i < kRecordsPerRound; ++i) {
        ingest.append(i % 2, record_at(i % 3, static_cast<std::uint32_t>(appended + i)), {},
                      std::nullopt);
      }
    });
    for (std::thread& sealer : sealers) sealer.join();
    racer.join();
    appended += kRecordsPerRound;
  }
  // Quiescent final seal: whatever the racing appends left buffered lands in
  // one last segment, so the totals below are exact.
  static_cast<void>(ingest.seal_epoch(deployment));

  const EpochSnapshot final_snapshot = ingest.snapshot();
  // Every seal produced a segment (one per sealer per round + the final
  // drain), none was lost.
  EXPECT_EQ(final_snapshot.epoch(), kRounds * kSealers + 1);
  EXPECT_EQ(final_snapshot.segments().size(), kRounds * kSealers + 1);
  // And every appended record landed in exactly one segment.
  EXPECT_EQ(final_snapshot.size(), appended);
  std::uint64_t expected_base = 0;
  for (std::size_t i = 0; i < final_snapshot.segments().size(); ++i) {
    EXPECT_EQ(final_snapshot.segments()[i]->id(), i);
    EXPECT_EQ(final_snapshot.segments()[i]->base(), expected_base);
    expected_base += final_snapshot.segments()[i]->size();
  }
}

TEST(IngestShards, TotalSealedAndEpochTrackSnapshotWithoutCopying) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(2);
  EXPECT_EQ(ingest.total_sealed(), 0u);
  EXPECT_EQ(ingest.epoch(), 0u);
  ingest.append(0, record_at(0, 1), {}, std::nullopt);
  ingest.append(1, record_at(1, 2), {}, std::nullopt);
  // Buffered-but-unsealed records do not count.
  EXPECT_EQ(ingest.total_sealed(), 0u);
  static_cast<void>(ingest.seal_epoch(deployment));
  EXPECT_EQ(ingest.total_sealed(), 2u);
  EXPECT_EQ(ingest.epoch(), 1u);
  ingest.append(0, record_at(0, 3), {}, std::nullopt);
  static_cast<void>(ingest.seal_epoch(deployment));
  EXPECT_EQ(ingest.total_sealed(), 3u);
  EXPECT_EQ(ingest.epoch(), 2u);
}

TEST(IngestShards, BackpressureBlocksProducersUntilSeal) {
  // With a pending limit set, a producer that would overfill the buffers
  // parks in append() and is released by the drain inside seal_epoch. Run
  // under TSan to verify the wait/notify discipline.
  const topology::Deployment deployment = tiny_deployment();
  constexpr std::size_t kLimit = 64;
  constexpr std::uint32_t kTotal = 1000;

  IngestShards ingest(2);
  ingest.set_pending_limit(kLimit);
  EXPECT_EQ(ingest.pending_limit(), kLimit);

  std::atomic<std::uint32_t> produced{0};
  std::thread producer([&ingest, &produced] {
    for (std::uint32_t i = 0; i < kTotal; ++i) {
      ingest.append(i % 2, record_at(i % 3, i), {}, std::nullopt);
      produced.fetch_add(1);
    }
  });

  // The producer must stall at the limit: pending() can overshoot by at most
  // the number of producers already past the gate (here, one).
  std::uint64_t sealed_total = 0;
  while (sealed_total < kTotal) {
    EXPECT_LE(ingest.pending(), kLimit + 1);
    sealed_total += ingest.seal_epoch(deployment).segments().back()->size();
  }
  producer.join();
  EXPECT_EQ(produced.load(), kTotal);
  EXPECT_EQ(ingest.total_sealed(), kTotal);
  EXPECT_EQ(ingest.pending(), 0u);
}

TEST(IngestShards, ZeroPendingLimitNeverBlocks) {
  const topology::Deployment deployment = tiny_deployment();
  IngestShards ingest(2);
  // The default (0) means unbounded: a burst far beyond any limit goes in
  // without a seal.
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ingest.append(i % 2, record_at(i % 3, i), {}, std::nullopt);
  }
  EXPECT_EQ(ingest.pending(), 10000u);
  EXPECT_EQ(ingest.seal_epoch(deployment).size(), 10000u);
}

TEST(IngestShards, CollectorSinkRoutesCaptureIntoShards) {
  // The collector diverts captured records into the ingest buffers; its own
  // store stays empty for the whole run.
  const topology::Deployment deployment = tiny_deployment();
  const topology::TargetUniverse universe(deployment);
  capture::Collector collector(universe);
  IngestShards ingest(2);
  collector.set_store_sink(
      [&ingest](const capture::SessionRecord& record, std::string_view payload,
                const std::optional<proto::Credential>& credential) {
        ingest.append(ingest.shard_of(record), record, payload, credential);
      });

  capture::ScanEvent event;
  event.time = 1;
  event.src = net::IPv4Addr(9, 9, 9, 9);
  event.src_as = 65000;
  event.dst = deployment.at(1).addresses[0];
  event.dst_port = 80;
  event.intended_protocol = net::Protocol::kHttp;  // client-speaks-first: payload retained
  event.payload = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(collector.deliver(event));

  EXPECT_EQ(collector.store().size(), 0u);
  EXPECT_EQ(ingest.pending(), 1u);
  const EpochSnapshot snapshot = ingest.seal_epoch(deployment);
  const capture::EventStore& store = snapshot.segments()[0]->store();
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.records()[0].vantage, 1u);
  EXPECT_EQ(store.payload(store.records()[0].payload_id), "GET / HTTP/1.1\r\n\r\n");
}

}  // namespace
}  // namespace cw::stream
