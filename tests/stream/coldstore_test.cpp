// The out-of-core segment store's end-to-end invariants:
//
//  1. Segment::spill() changes where a segment's frame lives, never what it
//     answers — every query is identical before the spill, while mapped, and
//     after a release/remap cycle.
//  2. Segment::load_spilled() (cold process restart: nothing shared with the
//     sealing process except the file) reconstructs the identical frame,
//     dictionaries included.
//  3. A LiveReport run renders byte-identical output whether segments are
//     resident or spilled, at any hot-set size.
//  4. A Fleet sweep through stream::make_spill_sim_runner produces the exact
//     report bytes of the default in-memory runner.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table_cache.h"
#include "core/experiment.h"
#include "runner/fleet.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "stream/ingest.h"
#include "stream/live_report.h"
#include "stream/snapshot.h"
#include "stream/spill_runner.h"

namespace cw::stream {
namespace {

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 4;
  config.duration = util::kDay;
  return config;
}

// Scratch directory unique to this test binary run; removed by each test.
std::string scratch_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "coldstore_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Seals the tiny experiment into `epochs` segments through the live ingest
// path — the exact seal the production tiering demotes.
EpochSnapshot seal_epochs(core::LiveExperiment& live, std::size_t epochs) {
  IngestShards ingest(4);
  live.collector().set_store_sink(
      [&ingest](const capture::SessionRecord& record, std::string_view payload,
                const std::optional<proto::Credential>& credential) {
        ingest.append(ingest.shard_of(record), record, payload, credential);
      });
  const analysis::MaliciousClassifier& classifier = live.result().classifier();
  const VerdictFactory verdict = [&classifier](const capture::EventStore& store) {
    return [&classifier, &store](const capture::SessionRecord& record) {
      switch (classifier.classify(record, store)) {
        case analysis::MeasuredIntent::kMalicious:
          return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
  };
  const core::ExperimentConfig config = tiny_config();
  EpochSnapshot snapshot;
  for (std::size_t k = 1; k <= epochs; ++k) {
    live.advance_to(config.duration * k / epochs);
    snapshot = ingest.seal_epoch(live.result().deployment(), verdict, nullptr,
                                 /*verdict_pure=*/true);
  }
  live.collector().set_store_sink({});
  return snapshot;
}

// A digest of everything the analysis layer reads from a frame: per-port and
// per-(vantage, port) posting sums, per-vantage extents, verdict counts,
// code checksums. Equal digests across spill states == equal query answers.
struct FrameDigest {
  std::uint64_t size = 0;
  std::vector<std::uint64_t> port_sums;
  std::vector<std::uint64_t> vantage_sums;
  std::vector<std::uint64_t> vp_sums;
  std::uint64_t verdicts = 0;
  std::uint64_t codes = 0;

  bool operator==(const FrameDigest&) const = default;
};

FrameDigest digest(const capture::SessionFrame& frame) {
  FrameDigest out;
  out.size = frame.size();
  for (const net::Port port : {net::Port{22}, net::Port{23}, net::Port{80}, net::Port{443}}) {
    std::uint64_t sum = 1;
    frame.for_port(port).for_each([&sum](std::uint32_t v) { sum = sum * 31 + v; });
    out.port_sums.push_back(sum);
  }
  const std::size_t vantages = frame.deployment().vantage_points().size();
  for (topology::VantageId v = 0; v < vantages; ++v) {
    std::uint64_t sum = 1;
    for (const std::uint32_t index : frame.for_vantage(v)) sum = sum * 31 + index;
    out.vantage_sums.push_back(sum);
    for (const net::Port port : {net::Port{22}, net::Port{80}}) {
      std::uint64_t vp_sum = 1;
      frame.for_vantage_port(v, port).for_each(
          [&vp_sum](std::uint32_t i) { vp_sum = vp_sum * 31 + i; });
      out.vp_sums.push_back(vp_sum);
    }
  }
  if (frame.has_verdicts()) {
    for (std::uint32_t i = 0; i < frame.size(); ++i) {
      out.verdicts = out.verdicts * 31 + static_cast<std::uint64_t>(frame.verdict(i));
    }
  }
  if (frame.has_codes()) {
    for (std::size_t c = 0; c < capture::kCodedColumns; ++c) {
      for (const std::uint32_t code : frame.codes(static_cast<capture::CodedColumn>(c))) {
        out.codes = out.codes * 31 + code;
      }
    }
  }
  return out;
}

TEST(SegmentSpill, QueriesIdenticalAcrossSpillAndRemapCycles) {
  const std::string dir = scratch_dir("spill");
  core::LiveExperiment live(tiny_config());
  const EpochSnapshot snapshot = seal_epochs(live, 3);
  ASSERT_EQ(snapshot.segments().size(), 3u);
  ASSERT_GT(snapshot.size(), 0u);

  for (const auto& segment : snapshot.segments()) {
    const FrameDigest hot = digest(segment->frame());
    ASSERT_FALSE(segment->spilled());

    std::string error;
    ASSERT_TRUE(segment->spill(dir, &error)) << error;
    ASSERT_TRUE(segment->spilled());
    EXPECT_TRUE(std::filesystem::exists(segment->spill_path()));
    EXPECT_EQ(segment->store().size(), 0u);  // records dropped, frame remains
    EXPECT_EQ(segment->size(), hot.size);
    EXPECT_EQ(digest(segment->frame()), hot);  // mapped in place after spill

    // Release and remap twice: the round trip must be idempotent.
    for (int cycle = 0; cycle < 2; ++cycle) {
      segment->release_mapping();
      EXPECT_EQ(segment->size(), hot.size);  // metadata survives cold
      ASSERT_TRUE(segment->ensure_mapped(&error)) << error;
      segment->advise_sequential();
      EXPECT_EQ(digest(segment->frame()), hot);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(SegmentSpill, LoadSpilledReconstructsTheSealedSegment) {
  const std::string dir = scratch_dir("restart");
  core::LiveExperiment live(tiny_config());
  const EpochSnapshot snapshot = seal_epochs(live, 2);
  const Segment& original = *snapshot.segments().back();
  const FrameDigest hot = digest(original.frame());

  std::string error;
  ASSERT_TRUE(original.spill(dir, &error)) << error;

  // Cold restart: a fresh Segment built from nothing but the file and the
  // deployment. Dictionaries come from the inline section, so characteristic
  // text resolves identically.
  const auto reloaded = Segment::load_spilled(original.spill_path(), original.id(),
                                              original.base(), live.result().deployment(), &error);
  ASSERT_NE(reloaded, nullptr) << error;
  EXPECT_EQ(reloaded->id(), original.id());
  EXPECT_EQ(reloaded->base(), original.base());
  ASSERT_TRUE(reloaded->ensure_mapped(&error)) << error;
  EXPECT_EQ(digest(reloaded->frame()), hot);
  ASSERT_TRUE(original.frame().has_codes());
  for (std::size_t c = 0; c < capture::kCodedColumns; ++c) {
    const auto column = static_cast<capture::CodedColumn>(c);
    const auto& got = *reloaded->frame().dict(column);
    const auto& want = *original.frame().dict(column);
    ASSERT_EQ(got.size(), want.size());
    for (std::uint32_t code = 0; code < want.size(); ++code) {
      ASSERT_EQ(got.at(code), want.at(code)) << "column " << c;
    }
  }

  // Loading a corrupted spill file fails cleanly instead of mapping garbage.
  const std::string path = original.spill_path();
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_EQ(Segment::load_spilled(path, 0, 0, live.result().deployment(), &error), nullptr);
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

std::vector<std::string> live_outputs(const std::string& spill_dir, std::size_t hot_segments,
                                      bool render_intermediate) {
  LiveReportConfig config;
  config.experiment = tiny_config();
  config.epochs = 3;
  config.shards = 4;
  config.jobs = 2;
  config.report.include_leak = false;
  config.render_intermediate = render_intermediate;
  config.spill_dir = spill_dir;
  config.hot_segments = hot_segments;
  LiveReport live(config);
  const EpochReport report = live.run();
  EXPECT_TRUE(report.rendered);
  EXPECT_FALSE(report.failed);
  return report.outputs;
}

TEST(LiveReportColdstore, SpilledRunsMatchResidentBytesAtEveryHotSetSize) {
  const std::vector<std::string> resident = live_outputs("", 0, /*render_intermediate=*/false);
  ASSERT_FALSE(resident.empty());

  for (const std::size_t hot : {std::size_t{0}, std::size_t{1}, static_cast<std::size_t>(-1)}) {
    const std::string dir = scratch_dir("live");
    const std::vector<std::string> spilled = live_outputs(dir, hot, false);
    ASSERT_EQ(spilled.size(), resident.size()) << "hot " << hot;
    for (std::size_t i = 0; i < resident.size(); ++i) {
      EXPECT_EQ(spilled[i], resident[i]) << "table " << i << " at hot " << hot;
    }
    std::filesystem::remove_all(dir);
  }

  // Intermediate renders exercise the map-before-render path every epoch.
  const std::vector<std::string> resident_mid = live_outputs("", 0, true);
  const std::string dir = scratch_dir("live_mid");
  EXPECT_EQ(live_outputs(dir, 1, true), resident_mid);
  std::filesystem::remove_all(dir);
}

TEST(FleetSpillRunner, SweepReportMatchesDefaultRunnerBytes) {
  runner::Campaign campaign;
  campaign.name = "coldstore";
  campaign.seed = 0x636f6c64ULL;
  core::ExperimentConfig config = tiny_config();
  for (const char* sim : {"simA", "simB"}) {
    runner::FleetCell cell;
    cell.label = std::string(sim) + "/k3";
    cell.sim_label = sim;
    cell.config = config;
    campaign.cells.push_back(cell);
  }

  runner::ThreadPool pool(2);
  const std::string resident =
      runner::SweepReport::render(campaign, runner::Fleet(pool).run(campaign));

  const std::string dir = scratch_dir("fleet");
  SpillSimOptions options;
  options.spill_dir = dir;
  options.hot_segments = 1;
  options.epochs = 3;
  options.shards = 4;
  runner::Fleet fleet(pool);
  fleet.set_sim_runner(make_spill_sim_runner(options, &pool));
  const std::string spilled = runner::SweepReport::render(campaign, fleet.run(campaign));

  EXPECT_EQ(spilled, resident);
  // Per-sim spill directories are removed with their contexts.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cw::stream
