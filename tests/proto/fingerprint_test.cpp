#include "proto/fingerprint.h"

#include <gtest/gtest.h>

#include "proto/payloads.h"

namespace cw::proto {
namespace {

// Property: every protocol's canonical probe payload fingerprints back to
// that protocol (the LZR closure property Section 6 depends on).
class ProbeRoundTrip : public ::testing::TestWithParam<net::Protocol> {};

TEST_P(ProbeRoundTrip, IdentifiesOwnProbe) {
  const net::Protocol protocol = GetParam();
  const std::string payload = probe_payload(protocol);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(Fingerprinter::identify(payload), protocol)
      << "payload: " << payload.substr(0, 32);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProbeRoundTrip,
    ::testing::Values(net::Protocol::kHttp, net::Protocol::kTls, net::Protocol::kSsh,
                      net::Protocol::kTelnet, net::Protocol::kSmb, net::Protocol::kRtsp,
                      net::Protocol::kSip, net::Protocol::kNtp, net::Protocol::kRdp,
                      net::Protocol::kAdb, net::Protocol::kFox, net::Protocol::kRedis,
                      net::Protocol::kSql),
    [](const ::testing::TestParamInfo<net::Protocol>& info) {
      return std::string(net::protocol_name(info.param));
    });

TEST(Fingerprinter, EmptyPayloadUnknown) {
  EXPECT_EQ(Fingerprinter::identify(""), net::Protocol::kUnknown);
}

TEST(Fingerprinter, RandomBytesUnknown) {
  EXPECT_EQ(Fingerprinter::identify("hello world"), net::Protocol::kUnknown);
  EXPECT_EQ(Fingerprinter::identify(std::string("\x99\x88\x77", 3)), net::Protocol::kUnknown);
}

TEST(Fingerprinter, HttpMethods) {
  for (const char* method : {"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS"}) {
    const std::string payload = std::string(method) + " / HTTP/1.1\r\n\r\n";
    EXPECT_EQ(Fingerprinter::identify(payload), net::Protocol::kHttp) << method;
  }
}

TEST(Fingerprinter, RtspNotMistakenForHttp) {
  EXPECT_EQ(Fingerprinter::identify("OPTIONS * RTSP/1.0\r\nCSeq: 1\r\n\r\n"),
            net::Protocol::kRtsp);
  EXPECT_EQ(Fingerprinter::identify("DESCRIBE rtsp://x RTSP/1.0\r\n\r\n"), net::Protocol::kRtsp);
}

TEST(Fingerprinter, SipNotMistakenForHttp) {
  EXPECT_EQ(Fingerprinter::identify(sip_options()), net::Protocol::kSip);
}

TEST(Fingerprinter, TlsRequiresClientHello) {
  // Handshake record but not a ClientHello (type 0x02).
  std::string not_hello = tls_client_hello();
  not_hello[5] = '\x02';
  EXPECT_NE(Fingerprinter::identify(not_hello), net::Protocol::kTls);
}

TEST(Fingerprinter, SshBannerVariants) {
  EXPECT_EQ(Fingerprinter::identify("SSH-2.0-Go\r\n"), net::Protocol::kSsh);
  EXPECT_EQ(Fingerprinter::identify("SSH-1.99-old"), net::Protocol::kSsh);
  EXPECT_EQ(Fingerprinter::identify("SSH"), net::Protocol::kUnknown);
}

TEST(Fingerprinter, TelnetRequiresIacVerb) {
  EXPECT_EQ(Fingerprinter::identify(telnet_negotiation()), net::Protocol::kTelnet);
  // A lone 0xff byte is not enough.
  EXPECT_EQ(Fingerprinter::identify(std::string("\xff", 1)), net::Protocol::kUnknown);
  // 0xff followed by a non-verb byte is not Telnet.
  EXPECT_EQ(Fingerprinter::identify(std::string("\xff\x01", 2)), net::Protocol::kUnknown);
}

TEST(Fingerprinter, SmbWithAndWithoutNetbiosFraming) {
  EXPECT_EQ(Fingerprinter::identify(smb_negotiate()), net::Protocol::kSmb);
  const std::string bare = std::string("\xffSMB", 4) + std::string(30, '\x00');
  EXPECT_EQ(Fingerprinter::identify(bare), net::Protocol::kSmb);
  const std::string smb2 = std::string("\xfeSMB", 4) + std::string(30, '\x00');
  EXPECT_EQ(Fingerprinter::identify(smb2), net::Protocol::kSmb);
}

TEST(Fingerprinter, NtpRequiresExactLength) {
  std::string ntp = ntp_client();
  EXPECT_EQ(Fingerprinter::identify(ntp), net::Protocol::kNtp);
  ntp += '\x00';
  EXPECT_EQ(Fingerprinter::identify(ntp), net::Protocol::kUnknown);
}

TEST(Fingerprinter, RedisInlineAndResp) {
  EXPECT_EQ(Fingerprinter::identify("PING\r\n"), net::Protocol::kRedis);
  EXPECT_EQ(Fingerprinter::identify("*1\r\n$4\r\nPING\r\n"), net::Protocol::kRedis);
  EXPECT_EQ(Fingerprinter::identify("PONG\r\n"), net::Protocol::kUnknown);
}

TEST(Fingerprinter, IsExpectedMatchesAssignment) {
  EXPECT_TRUE(Fingerprinter::is_expected(probe_payload(net::Protocol::kHttp), 80));
  EXPECT_TRUE(Fingerprinter::is_expected(probe_payload(net::Protocol::kHttp), 8080));
  EXPECT_FALSE(Fingerprinter::is_expected(tls_client_hello(), 80));
  EXPECT_TRUE(Fingerprinter::is_expected(tls_client_hello(), 443));
  EXPECT_FALSE(Fingerprinter::is_expected(probe_payload(net::Protocol::kHttp), 22));
  // Unassigned port: nothing is "expected" there.
  EXPECT_FALSE(Fingerprinter::is_expected(probe_payload(net::Protocol::kHttp), 17128));
}

}  // namespace
}  // namespace cw::proto
