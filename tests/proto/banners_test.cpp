#include "proto/banners.h"

#include <gtest/gtest.h>

namespace cw::proto {
namespace {

TEST(ServerBanner, TextProtocolsHaveBanners) {
  for (auto protocol : {net::Protocol::kSsh, net::Protocol::kHttp, net::Protocol::kTelnet,
                        net::Protocol::kTls, net::Protocol::kRtsp, net::Protocol::kRedis,
                        net::Protocol::kSql, net::Protocol::kFox, net::Protocol::kSip}) {
    EXPECT_FALSE(server_banner(protocol).empty()) << net::protocol_name(protocol);
  }
}

TEST(ServerBanner, SilentProtocolsHaveNone) {
  for (auto protocol : {net::Protocol::kSmb, net::Protocol::kRdp, net::Protocol::kNtp,
                        net::Protocol::kAdb, net::Protocol::kUnknown}) {
    EXPECT_TRUE(server_banner(protocol).empty()) << net::protocol_name(protocol);
  }
}

TEST(ServerBanner, DeterministicPerVariant) {
  EXPECT_EQ(server_banner(net::Protocol::kSsh, 2), server_banner(net::Protocol::kSsh, 2));
  EXPECT_NE(server_banner(net::Protocol::kSsh, 0), server_banner(net::Protocol::kSsh, 1));
}

TEST(ServerBanner, SshBannersLookVulnerable) {
  bool found_dated_openssh = false;
  for (std::uint32_t v = 0; v < 4; ++v) {
    const std::string banner = server_banner(net::Protocol::kSsh, v);
    EXPECT_EQ(banner.rfind("SSH-2.0-", 0), 0u) << banner;
    if (banner.find("OpenSSH_7.4") != std::string::npos) found_dated_openssh = true;
  }
  EXPECT_TRUE(found_dated_openssh);
}

TEST(ServerBanner, HttpBannersCarryServerHeader) {
  const std::string banner = server_banner(net::Protocol::kHttp, 0);
  EXPECT_NE(banner.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(banner.find("Server: "), std::string::npos);
}

}  // namespace
}  // namespace cw::proto
