#include "proto/http.h"

#include <gtest/gtest.h>

namespace cw::proto {
namespace {

TEST(HttpRequest, SerializeBasicGet) {
  HttpRequest req;
  req.method = "GET";
  req.uri = "/index.html";
  req.headers = {{"Host", "example.com"}};
  EXPECT_EQ(req.serialize(), "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n");
}

TEST(HttpRequest, SerializeAppendsContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.uri = "/api";
  req.body = "hello";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpRequest, SerializeRespectsExplicitContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.uri = "/";
  req.headers = {{"Content-Length", "99"}};
  req.body = "x";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("Content-Length: 99"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length: 1\r\n"), std::string::npos);
}

TEST(HttpRequest, HeaderLookupCaseInsensitive) {
  HttpRequest req;
  req.headers = {{"User-Agent", "zgrab"}};
  ASSERT_TRUE(req.header("user-agent").has_value());
  EXPECT_EQ(*req.header("user-agent"), "zgrab");
  EXPECT_FALSE(req.header("Accept").has_value());
}

TEST(ParseHttp, RoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.uri = "/login";
  req.headers = {{"Host", "h"}, {"Content-Type", "text/plain"}};
  req.body = "user=admin";
  const auto parsed = parse_http(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->uri, "/login");
  EXPECT_EQ(parsed->body, "user=admin");
  ASSERT_TRUE(parsed->header("Content-Type").has_value());
}

TEST(ParseHttp, RejectsNonHttp) {
  EXPECT_FALSE(parse_http("SSH-2.0-OpenSSH\r\n").has_value());
  EXPECT_FALSE(parse_http("").has_value());
  EXPECT_FALSE(parse_http("GET /").has_value());       // no CRLF
  EXPECT_FALSE(parse_http("GET /\r\n").has_value());   // no version
}

TEST(ParseHttp, ToleratesSpacesInUri) {
  const auto parsed = parse_http("GET /a b c HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->uri, "/a b c");
}

TEST(ParseHttp, ToleratesJunkHeaderLines) {
  const auto parsed = parse_http("GET / HTTP/1.1\r\ngarbage-no-colon\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->header("Host").has_value());
}

TEST(NormalizeHttp, StripsEphemeralHeaders) {
  const std::string payload =
      "GET / HTTP/1.1\r\nHost: victim-7\r\nDate: Mon, 05 Jul 2021\r\n"
      "Content-Length: 10\r\nUser-Agent: tool\r\n\r\npayloadbody";
  const std::string normalized = normalize_http_payload(payload);
  EXPECT_EQ(normalized.find("Host:"), std::string::npos);
  EXPECT_EQ(normalized.find("Date:"), std::string::npos);
  EXPECT_EQ(normalized.find("Content-Length:"), std::string::npos);
  EXPECT_NE(normalized.find("User-Agent: tool"), std::string::npos);
  EXPECT_NE(normalized.find("payloadbody"), std::string::npos);
}

TEST(NormalizeHttp, IdenticalCampaignPayloadsCollapse) {
  // Two requests differing only in Host/Content-Length normalize equal —
  // the property Section 3.3's payload comparison relies on.
  const std::string a =
      "POST /api HTTP/1.1\r\nHost: 3.1.2.3\r\nContent-Length: 7\r\n\r\nexploit";
  const std::string b =
      "POST /api HTTP/1.1\r\nHost: 45.33.9.9\r\nContent-Length: 7\r\n\r\nexploit";
  EXPECT_EQ(normalize_http_payload(a), normalize_http_payload(b));
}

TEST(NormalizeHttp, LeavesNonHttpUntouched) {
  const std::string ssh = "SSH-2.0-OpenSSH_7.4\r\n";
  EXPECT_EQ(normalize_http_payload(ssh), ssh);
  const std::string binary("\x16\x03\x01\x00\x05hello", 10);
  EXPECT_EQ(normalize_http_payload(binary), binary);
}

TEST(NormalizeHttp, CaseInsensitiveHeaderMatch) {
  const std::string payload = "GET / HTTP/1.1\r\nhOsT: x\r\nDATE: y\r\n\r\n";
  const std::string normalized = normalize_http_payload(payload);
  EXPECT_EQ(normalized.find("hOsT"), std::string::npos);
  EXPECT_EQ(normalized.find("DATE"), std::string::npos);
}

}  // namespace
}  // namespace cw::proto
