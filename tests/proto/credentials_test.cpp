#include "proto/credentials.h"

#include <gtest/gtest.h>

#include <map>

namespace cw::proto {
namespace {

TEST(Dictionaries, AllNonEmpty) {
  for (auto dict : {CredentialDictionary::kGenericSsh, CredentialDictionary::kGenericTelnet,
                    CredentialDictionary::kMirai, CredentialDictionary::kHuaweiRegional}) {
    EXPECT_FALSE(dictionary(dict).empty());
  }
}

TEST(Dictionaries, MiraiContainsCanonicalEntries) {
  const auto& mirai = dictionary(CredentialDictionary::kMirai);
  EXPECT_EQ(mirai.front(), (Credential{"root", "xc3511"}));
  bool has_vizxv = false;
  for (const Credential& c : mirai) {
    if (c == Credential{"root", "vizxv"}) has_vizxv = true;
  }
  EXPECT_TRUE(has_vizxv);
  EXPECT_GE(mirai.size(), 50u);  // Mirai ships ~60 pairs
}

TEST(Dictionaries, HuaweiRegionalContainsPaperCredentials) {
  // Section 5.1: AWS Australia honeypots were dominated by "mother" and
  // "e8ehome" attempts.
  const auto& regional = dictionary(CredentialDictionary::kHuaweiRegional);
  bool has_mother = false;
  bool has_e8ehome = false;
  for (const Credential& c : regional) {
    if (c.username == "mother") has_mother = true;
    if (c.username == "e8ehome") has_e8ehome = true;
  }
  EXPECT_TRUE(has_mother);
  EXPECT_TRUE(has_e8ehome);
}

TEST(Dictionaries, TelnetTopIsRootAdminSupport) {
  // "The top attempted Telnet usernames for most geographic regions are
  // root, admin, and support."
  const auto& telnet = dictionary(CredentialDictionary::kGenericTelnet);
  EXPECT_EQ(telnet[0].username, "root");
  EXPECT_EQ(telnet[1].username, "admin");
  EXPECT_EQ(telnet[2].username, "support");
}

TEST(SampleCredential, HeavyHead) {
  util::Rng rng(5);
  std::map<std::string, int> counts;
  for (int i = 0; i < 10000; ++i) {
    const Credential& c = sample_credential(CredentialDictionary::kGenericSsh, rng);
    ++counts[c.username + ":" + c.password];
  }
  const auto& dict = dictionary(CredentialDictionary::kGenericSsh);
  const std::string top = dict[0].username + ":" + dict[0].password;
  const std::string rank5 = dict[5].username + ":" + dict[5].password;
  EXPECT_GT(counts[top], counts[rank5]);
  EXPECT_GT(counts[top], 10000 / 8);  // zipf head dominance
}

TEST(SampleCredential, Deterministic) {
  util::Rng a(9);
  util::Rng b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_credential(CredentialDictionary::kMirai, a),
              sample_credential(CredentialDictionary::kMirai, b));
  }
}

}  // namespace
}  // namespace cw::proto
