#include "runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/pipeline.h"

namespace cw::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  EXPECT_EQ(pool.worker_count(), 2u);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedSubmissionsFinishBeforeIdle) {
  // A task fans out subtasks; wait_idle must cover them too (work stealing
  // lets other workers pick nested tasks off the submitter's queue).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16 * 8);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroWorkersFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ParallelForFromOutsideRunsEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlockOnOneWorker) {
  // parallel_for called from inside a pool task must help drain the queue
  // rather than block: with a single worker there is nobody else to run the
  // nested shards, so a blocking wait would deadlock forever.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    pool.parallel_for(16, [&pool, &count](std::size_t) {
      pool.parallel_for(4, [&count](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16 * 4);
}

TEST(ThreadPool, ParallelForRethrowsOnCallerInsteadOfHanging) {
  // A throwing fn used to leave group->done short of n (caller spins
  // forever) or escape a submitted wrapper task (std::terminate). The first
  // exception must surface on the calling thread once the loop settles.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&ran](std::size_t) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          throw std::runtime_error("shard failed");
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // The pool must stay fully usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(32, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
  pool.wait_idle();
}

TEST(ThreadPool, ParallelForExceptionInsideNestedTaskStaysContained) {
  // Single worker: the throwing shard necessarily runs on the thread that
  // called parallel_for from inside a pool task; the exception must not
  // leak past that task's own try/catch into the worker loop.
  ThreadPool pool(1);
  std::atomic<bool> caught{false};
  pool.submit([&pool, &caught] {
    try {
      pool.parallel_for(8, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      caught.store(true);
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(caught.load());
}

TEST(ParseJobs, AcceptsNonNegativeIntegersAndClampsLargeValues) {
  ASSERT_TRUE(parse_jobs("0").has_value());
  EXPECT_EQ(*parse_jobs("0"), 0u);  // 0 keeps its hardware-concurrency meaning
  ASSERT_TRUE(parse_jobs("1").has_value());
  EXPECT_EQ(*parse_jobs("1"), 1u);
  unsigned max_jobs = std::thread::hardware_concurrency();
  if (max_jobs == 0) max_jobs = 1;
  ASSERT_TRUE(parse_jobs("999999999").has_value());
  EXPECT_EQ(*parse_jobs("999999999"), max_jobs);
}

TEST(ParseJobs, RejectsNegativeAndMalformedInput) {
  EXPECT_FALSE(parse_jobs("-1").has_value());
  EXPECT_FALSE(parse_jobs("-999999999999999999999").has_value());
  EXPECT_FALSE(parse_jobs("abc").has_value());
  EXPECT_FALSE(parse_jobs("8x").has_value());
  EXPECT_FALSE(parse_jobs("").has_value());
  EXPECT_FALSE(parse_jobs(nullptr).has_value());
}

TEST(ParallelMap, CollectsResultsIntoFixedSlots) {
  ThreadPool pool(4);
  const std::function<int(std::size_t)> square = [](std::size_t i) {
    return static_cast<int>(i * i);
  };
  const std::vector<int> out = parallel_map<int>(pool, 100, square);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(RunPipelines, DeterministicSlotsAndErrorIsolation) {
  std::vector<Pipeline> pipelines;
  auto add = [&pipelines](std::string name, std::function<std::string()> run,
                          std::uint64_t events) {
    Pipeline pipeline;
    pipeline.name = std::move(name);
    pipeline.run = std::move(run);
    pipeline.events = events;
    pipelines.push_back(std::move(pipeline));
  };
  add("first", [] { return std::string("one\n"); }, 10);
  add("boom", []() -> std::string { throw std::runtime_error("kaput"); }, 0);
  add("last", [] { return std::string("three\n"); }, 30);

  const RunResult run = run_pipelines(pipelines, 3);
  ASSERT_EQ(run.outputs.size(), 3u);
  EXPECT_EQ(run.outputs[0], "one\n");
  EXPECT_NE(run.outputs[1].find("kaput"), std::string::npos);
  EXPECT_EQ(run.outputs[2], "three\n");
  ASSERT_EQ(run.report.pipelines.size(), 3u);
  EXPECT_FALSE(run.report.pipelines[0].failed);
  EXPECT_TRUE(run.report.pipelines[1].failed);
  EXPECT_EQ(run.report.pipelines[0].events, 10u);
  EXPECT_EQ(run.report.pipelines[2].output_bytes, 6u);
  EXPECT_EQ(run.report.jobs, 3u);
  EXPECT_NE(run.report.render().find("boom (FAILED)"), std::string::npos);
}

TEST(RunPipelines, ShardedPipelineFansOutOnTheSharedPool) {
  // A run_sharded pipeline borrows the runner's own pool for its internal
  // fan-out; the slot output must still be deterministic at any worker count.
  for (unsigned jobs : {1u, 4u}) {
    std::vector<Pipeline> pipelines;
    Pipeline plain;
    plain.name = "plain";
    plain.run = [] { return std::string("p\n"); };
    pipelines.push_back(std::move(plain));
    Pipeline sharded;
    sharded.name = "sharded";
    sharded.run_sharded = [](ThreadPool& pool) {
      const std::function<int(std::size_t)> fn = [](std::size_t i) {
        return static_cast<int>(i) + 1;
      };
      const std::vector<int> parts = parallel_map<int>(pool, 8, fn);
      int sum = 0;
      for (int part : parts) sum += part;
      return std::to_string(sum) + "\n";
    };
    pipelines.push_back(std::move(sharded));
    const RunResult run = run_pipelines(pipelines, jobs);
    ASSERT_EQ(run.outputs.size(), 2u);
    EXPECT_EQ(run.outputs[0], "p\n");
    EXPECT_EQ(run.outputs[1], "36\n");
  }
}

}  // namespace
}  // namespace cw::runner
