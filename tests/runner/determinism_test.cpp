// The runner's core guarantee: the rendered report is bit-identical to the
// sequential run at every worker count. These tests run the full pipeline
// set (minus the heavyweight leak experiment) over one small experiment at
// 1, 2, and 8 workers and diff the outputs, and shard per-vantage analysis
// passes with parallel_map against a sequential reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runner/report.h"

namespace cw::runner {
namespace {

const core::ExperimentResult& small_experiment() {
  static const std::unique_ptr<core::ExperimentResult> result = [] {
    core::ExperimentConfig config;
    config.scale = 0.05;
    config.telescope_slash24s = 4;
    config.duration = util::kDay;
    return core::Experiment(config).run();
  }();
  return *result;
}

std::vector<std::string> render_all(unsigned jobs) {
  ReportOptions options;
  options.include_leak = false;
  const auto pipelines = paper_report_pipelines(small_experiment(), options);
  const RunResult run = run_pipelines(pipelines, jobs);
  EXPECT_EQ(run.outputs.size(), pipelines.size());
  return run.outputs;
}

TEST(RunnerDeterminism, SameOutputAt1And2And8Workers) {
  small_experiment().store().freeze();
  // Every renderer now reads the shared columnar frame; build it sharded so
  // the whole frame path (chunked column fill included) is under the
  // byte-identical diff.
  {
    ThreadPool frame_pool(8);
    static_cast<void>(small_experiment().frame(&frame_pool));
  }
  const std::vector<std::string> sequential = render_all(1);
  const std::vector<std::string> two = render_all(2);
  const std::vector<std::string> eight = render_all(8);
  ASSERT_EQ(sequential.size(), two.size());
  ASSERT_EQ(sequential.size(), eight.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], two[i]) << "pipeline slot " << i << " differs at 2 workers";
    EXPECT_EQ(sequential[i], eight[i]) << "pipeline slot " << i << " differs at 8 workers";
  }
  // The tables must actually contain data, not 17+ empty strings.
  for (const std::string& output : sequential) EXPECT_FALSE(output.empty());
}

TEST(RunnerDeterminism, PerVantageShardingMatchesSequential) {
  const core::ExperimentResult& experiment = small_experiment();
  const capture::EventStore& store = experiment.store();
  const std::size_t vantages = experiment.deployment().vantage_points().size();

  // Sequential reference: per-vantage (malicious, benign) counts.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
  for (std::size_t v = 0; v < vantages; ++v) {
    want.push_back(experiment.classifier().count(
        store, store.for_vantage(static_cast<topology::VantageId>(v))));
  }

  // Sharded: same passes fanned out across 8 workers; classifier memo table
  // and the vantage index are hit concurrently.
  ThreadPool pool(8);
  const std::function<std::pair<std::uint64_t, std::uint64_t>(std::size_t)> pass =
      [&](std::size_t v) {
        return experiment.classifier().count(
            store, store.for_vantage(static_cast<topology::VantageId>(v)));
      };
  const auto got = parallel_map<std::pair<std::uint64_t, std::uint64_t>>(pool, vantages, pass);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < vantages; ++v) {
    EXPECT_EQ(got[v], want[v]) << "vantage " << v;
  }
}

}  // namespace
}  // namespace cw::runner
