#include "runner/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cw::runner {
namespace {

// A small, fast grid: two simulations, two analysis variants on the first.
// Short window + tiny scale keeps this suite TSan-friendly.
Campaign tiny_campaign() {
  Campaign campaign;
  campaign.name = "tiny";
  campaign.seed = 0x7465737466ULL;
  core::ExperimentConfig config;
  config.scale = 0.1;
  config.telescope_slash24s = 4;
  config.duration = 2 * util::kDay;
  for (const char* sim : {"simA", "simB"}) {
    FleetCell cell;
    cell.label = std::string(sim) + "/k3";
    cell.sim_label = sim;
    cell.config = config;
    campaign.cells.push_back(cell);
  }
  FleetCell variant;  // shares simA's corpus, different analysis knobs
  variant.label = "simA/k5";
  variant.sim_label = "simA";
  variant.config = config;
  variant.analysis.top_k = 5;
  variant.analysis.use_bonferroni = false;
  campaign.cells.push_back(variant);
  return campaign;
}

TEST(FleetSeed, IsPureFunctionOfCampaignSeedAndSimLabel) {
  EXPECT_EQ(Fleet::cell_seed(42, "alpha"), util::Rng(42).stream("alpha").seed());
  EXPECT_EQ(Fleet::cell_seed(42, "alpha"), Fleet::cell_seed(42, "alpha"));
  EXPECT_NE(Fleet::cell_seed(42, "alpha"), Fleet::cell_seed(42, "beta"));
  EXPECT_NE(Fleet::cell_seed(42, "alpha"), Fleet::cell_seed(43, "alpha"));
}

TEST(FleetCampaigns, AblationGridSharesOneSimulation) {
  const Campaign campaign = make_ablation_campaign();
  ASSERT_EQ(campaign.cells.size(), 6u);  // top-k {3,5,100} x bonferroni {on,off}
  std::set<std::string> labels;
  std::set<std::string> sims;
  std::set<std::pair<std::size_t, bool>> variants;
  for (const FleetCell& cell : campaign.cells) {
    labels.insert(cell.label);
    sims.insert(cell.sim_label);
    variants.insert({cell.analysis.top_k, cell.analysis.use_bonferroni});
  }
  EXPECT_EQ(labels.size(), 6u);    // unique cell labels
  EXPECT_EQ(sims.size(), 1u);      // one shared corpus
  EXPECT_EQ(variants.size(), 6u);  // all analysis variants distinct
}

TEST(FleetCampaigns, CalibrationGridVariesSeedAndScale) {
  const CampaignParams params{.scale = 0.4};
  const Campaign campaign = make_calibration_campaign(params);
  ASSERT_EQ(campaign.cells.size(), 6u);  // 3 seed streams x 2 scales
  std::set<std::string> sims;
  std::set<double> scales;
  for (const FleetCell& cell : campaign.cells) {
    sims.insert(cell.sim_label);
    scales.insert(cell.config.scale);
    EXPECT_EQ(cell.analysis.top_k, 3u);  // analysis fixed at paper defaults
    EXPECT_TRUE(cell.analysis.use_bonferroni);
  }
  EXPECT_EQ(sims.size(), 6u);  // every cell is its own simulation
  EXPECT_EQ(scales.size(), 2u);
  EXPECT_NEAR(*scales.begin(), 0.4 * 0.6, 1e-12);
}

TEST(Fleet, ResultsInCellOrderAndCorpusSharedWithinSimGroups) {
  const Campaign campaign = tiny_campaign();
  ThreadPool pool(2);
  const Fleet fleet(pool);
  const std::vector<CellResult> results = fleet.run(campaign);
  ASSERT_EQ(results.size(), campaign.cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].label, campaign.cells[i].label);
    EXPECT_EQ(results[i].sim_label, campaign.cells[i].sim_label);
    EXPECT_EQ(results[i].seed, Fleet::cell_seed(campaign.seed, campaign.cells[i].sim_label));
    EXPECT_GT(results[i].records, 0u);
  }
  // simA cells (0 and 2) share one corpus; simB (1) is an independent run.
  EXPECT_EQ(results[0].seed, results[2].seed);
  EXPECT_EQ(results[0].records, results[2].records);
  EXPECT_EQ(results[0].events, results[2].events);
  EXPECT_NE(results[0].seed, results[1].seed);
}

TEST(Fleet, InFleetCellEqualsStandaloneRerun) {
  const Campaign campaign = tiny_campaign();
  ThreadPool fleet_pool(3);
  const std::vector<CellResult> in_fleet = Fleet(fleet_pool).run(campaign);

  // Rerun the analysis-variant cell alone, in a one-cell campaign with the
  // same campaign seed, on a single-worker pool: the rendered per-cell
  // report must be byte-identical to the in-fleet run's.
  Campaign solo = campaign;
  solo.cells = {campaign.cells[2]};
  ThreadPool solo_pool(1);
  const std::vector<CellResult> standalone = Fleet(solo_pool).run(solo);
  ASSERT_EQ(standalone.size(), 1u);
  EXPECT_EQ(render_cell(standalone[0]), render_cell(in_fleet[2]));
}

TEST(Fleet, SweepReportByteIdenticalAcrossWorkerCounts) {
  const Campaign campaign = tiny_campaign();
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const std::string report1 = SweepReport::render(campaign, Fleet(pool1).run(campaign));
  const std::string report4 = SweepReport::render(campaign, Fleet(pool4).run(campaign));
  EXPECT_EQ(report1, report4);
}

TEST(SweepReportRender, MatrixListsEveryFindingAndCell) {
  const Campaign campaign = tiny_campaign();
  ThreadPool pool(2);
  const std::vector<CellResult> results = Fleet(pool).run(campaign);
  const std::string report = SweepReport::render(campaign, results);
  EXPECT_NE(report.find("# sweep: tiny"), std::string::npos);
  EXPECT_NE(report.find("3 cells, 2 simulations"), std::string::npos);
  for (std::size_t f = 0; f < kPaperFindingCount; ++f) {
    const auto finding = static_cast<PaperFinding>(f);
    EXPECT_NE(report.find(std::string("| ") + std::string(finding_name(finding)) + " |"),
              std::string::npos);
    EXPECT_NE(report.find(std::string(finding_claim(finding))), std::string::npos);
  }
  for (const CellResult& cell : results) {
    EXPECT_NE(report.find("## cell " + cell.label), std::string::npos);
  }
  // Each cell's block inside the report matches its standalone render.
  for (const CellResult& cell : results) {
    EXPECT_NE(report.find(render_cell(cell)), std::string::npos);
  }
}

}  // namespace
}  // namespace cw::runner
