#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runner/fleet.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"

namespace cw::runner {
namespace {

TEST(CampaignRegistry, ListsEveryPresetWithADescription) {
  const auto& registry = campaign_registry();
  ASSERT_EQ(registry.size(), 6u);
  std::set<std::string_view> names;
  for (const CampaignInfo& info : registry) {
    names.insert(info.name);
    EXPECT_FALSE(info.description.empty()) << info.name;
    // Every listed name resolves through the factory, with the registry
    // name as the campaign name.
    const auto campaign = make_campaign(info.name);
    ASSERT_TRUE(campaign.has_value()) << info.name;
    EXPECT_EQ(campaign->name, info.name);
    EXPECT_FALSE(campaign->cells.empty()) << info.name;
  }
  EXPECT_EQ(names.size(), registry.size());  // no duplicate names
  EXPECT_TRUE(names.contains("adaptive"));
  EXPECT_TRUE(names.contains("colocation"));
  EXPECT_TRUE(names.contains("clustering"));
}

TEST(CampaignRegistry, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(make_campaign("no-such-campaign").has_value());
  EXPECT_FALSE(make_campaign("").has_value());
}

TEST(AdversaryCampaigns, AdaptiveGridCoversBaselineToMovingTarget) {
  const Campaign campaign = make_adaptive_campaign();
  ASSERT_EQ(campaign.cells.size(), 5u);
  EXPECT_EQ(campaign.cells[0].config.adversary.kind, adversary::ScenarioKind::kNone);
  EXPECT_EQ(campaign.cells[1].config.adversary.kind, adversary::ScenarioKind::kFixedAttackers);
  EXPECT_EQ(campaign.cells[2].config.adversary.kind,
            adversary::ScenarioKind::kAdaptiveAttackers);
  EXPECT_EQ(campaign.cells[3].config.adversary.kind, adversary::ScenarioKind::kMovingTarget);
  EXPECT_EQ(campaign.cells[4].config.adversary.kind, adversary::ScenarioKind::kMovingTarget);
  std::set<std::string> sims;
  for (const FleetCell& cell : campaign.cells) sims.insert(cell.sim_label);
  EXPECT_EQ(sims.size(), 5u);  // every scenario simulates its own world
}

TEST(AdversaryCampaigns, ClusteringCellsScoreAgainstGroundTruth) {
  const Campaign campaign = make_clustering_campaign();
  ASSERT_EQ(campaign.cells.size(), 3u);
  for (const FleetCell& cell : campaign.cells) {
    EXPECT_TRUE(cell.analysis.cluster_attackers);
    // Crawler traffic is infrastructure, not attacker behavior.
    EXPECT_FALSE(cell.analysis.cluster.exclude_actors.empty());
  }
  EXPECT_TRUE(campaign.cells[0].config.adversary.replace_population);
  EXPECT_FALSE(campaign.cells[2].config.adversary.replace_population);
}

TEST(AdversaryCampaigns, ColocationCellsEnableTheProbeTally) {
  const Campaign campaign = make_colocation_campaign();
  ASSERT_EQ(campaign.cells.size(), 3u);
  for (const FleetCell& cell : campaign.cells) {
    EXPECT_TRUE(cell.analysis.colocation_probes);
  }
}

// End-to-end: a two-cell fixed-vs-rotating grid at tiny scale. The rendered
// cells must carry the adversary blocks, and the defense must change what
// the adaptive attackers report.
TEST(AdversaryFleet, FixedAndRotatingCellsReportAdversaryState) {
  Campaign campaign;
  campaign.name = "adv-tiny";
  campaign.seed = 0x616476ULL;
  const auto add = [&](std::string label, adversary::ScenarioKind kind) {
    FleetCell cell;
    cell.label = label;
    cell.sim_label = std::move(label);
    cell.config.scale = 0.05;
    cell.config.telescope_slash24s = 4;
    cell.config.duration = 2 * util::kDay;
    cell.config.adversary.kind = kind;
    cell.config.adversary.attackers = 3;
    campaign.cells.push_back(std::move(cell));
  };
  add("fixed", adversary::ScenarioKind::kFixedAttackers);
  add("mtd", adversary::ScenarioKind::kMovingTarget);

  ThreadPool pool(2);
  const std::vector<CellResult> results = Fleet(pool).run(campaign);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].adversary.find("- adversary: 3 adaptive attackers"),
            std::string::npos);
  EXPECT_EQ(results[0].adversary.find("- defense:"), std::string::npos);
  EXPECT_NE(results[1].adversary.find("- defense:"), std::string::npos);
  EXPECT_NE(results[1].adversary.find("rotating"), std::string::npos);
  EXPECT_NE(results[0].adversary, results[1].adversary);
  for (const CellResult& cell : results) {
    EXPECT_NE(render_cell(cell).find(cell.adversary), std::string::npos);
  }

  // The JSON rendering carries the same state machine-readably.
  const std::string json = SweepReport::render_json(campaign, results);
  EXPECT_NE(json.find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"adversary\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
}

}  // namespace
}  // namespace cw::runner
