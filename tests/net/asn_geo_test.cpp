#include "net/asn.h"
#include "net/geo.h"

#include <gtest/gtest.h>

namespace cw::net {
namespace {

TEST(AsRegistry, FindsPaperNamedAses) {
  const AsRegistry registry = AsRegistry::standard();
  ASSERT_NE(registry.find(kAsnChinanet), nullptr);
  EXPECT_EQ(registry.find(kAsnChinanet)->name, "Chinanet");
  EXPECT_EQ(registry.find(kAsnChinanet)->country.to_string(), "CN");
  EXPECT_EQ(registry.name_of(kAsnCensys), "Censys");
  EXPECT_EQ(registry.name_of(kAsnAxtel), "Axtel");
  EXPECT_EQ(registry.name_of(kAsnPonyNet), "PonyNet");
}

TEST(AsRegistry, UnknownAsnFallsBack) {
  const AsRegistry registry = AsRegistry::standard();
  EXPECT_EQ(registry.find(999999), nullptr);
  EXPECT_EQ(registry.name_of(999999), "AS999999");
}

TEST(AsRegistry, SyntheticTailSizeScales) {
  const AsRegistry small = AsRegistry::standard(100);
  const AsRegistry large = AsRegistry::standard(600);
  EXPECT_GT(large.all().size(), small.all().size());
  EXPECT_GT(small.all().size(), 100u);  // tail + named entries
}

TEST(AsRegistry, SyntheticAsesLiveInPrivateRange) {
  const AsRegistry registry = AsRegistry::standard(50);
  for (const AsInfo& info : registry.all()) {
    if (info.name.rfind("ISP-", 0) == 0) {
      EXPECT_GE(info.asn, 64512u);
    }
  }
}

TEST(AsRegistry, InCountryFilters) {
  const AsRegistry registry = AsRegistry::standard();
  const auto cn = registry.in_country(CountryCode('C', 'N'));
  EXPECT_GE(cn.size(), 3u);  // Chinanet, China Mobile, China Unicom + tail
  for (Asn asn : cn) {
    EXPECT_EQ(registry.find(asn)->country.to_string(), "CN");
  }
}

TEST(CountryCode, ParseAndNormalize) {
  auto code = CountryCode::parse("us");
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(code->to_string(), "US");
  EXPECT_FALSE(CountryCode::parse("USA").has_value());
  EXPECT_FALSE(CountryCode::parse("1A").has_value());
  EXPECT_FALSE(CountryCode::parse("").has_value());
}

struct ContinentCase {
  const char* country;
  Continent continent;
};

class ContinentOf : public ::testing::TestWithParam<ContinentCase> {};

TEST_P(ContinentOf, Matches) {
  const auto code = CountryCode::parse(GetParam().country);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(continent_of(*code), GetParam().continent);
}

INSTANTIATE_TEST_SUITE_P(
    Countries, ContinentOf,
    ::testing::Values(ContinentCase{"US", Continent::kNorthAmerica},
                      ContinentCase{"CA", Continent::kNorthAmerica},
                      ContinentCase{"DE", Continent::kEurope},
                      ContinentCase{"GB", Continent::kEurope},
                      ContinentCase{"FI", Continent::kEurope},
                      ContinentCase{"SG", Continent::kAsiaPacific},
                      ContinentCase{"JP", Continent::kAsiaPacific},
                      ContinentCase{"AU", Continent::kAsiaPacific},
                      ContinentCase{"IN", Continent::kAsiaPacific},
                      ContinentCase{"TW", Continent::kAsiaPacific},
                      ContinentCase{"BR", Continent::kSouthAmerica},
                      ContinentCase{"EC", Continent::kSouthAmerica},
                      ContinentCase{"BH", Continent::kMiddleEast},
                      ContinentCase{"AE", Continent::kMiddleEast},
                      ContinentCase{"ZA", Continent::kAfrica}));

TEST(GeoRegion, CodeFormat) {
  EXPECT_EQ(make_region("US", "OR").code(), "US-OR");
  EXPECT_EQ(make_region("US").code(), "US");
  EXPECT_EQ(make_region("SG").code(), "AP-SG");
  EXPECT_EQ(make_region("CA", "QC").code(), "NA-CA-QC");
  EXPECT_EQ(make_region("BR").code(), "SA-BR");
}

TEST(GeoRegion, EqualityIncludesSubdivision) {
  EXPECT_EQ(make_region("US", "OR"), make_region("US", "OR"));
  EXPECT_FALSE(make_region("US", "OR") == make_region("US", "CA"));
}

TEST(Continent, Names) {
  EXPECT_EQ(continent_name(Continent::kAsiaPacific), "Asia Pacific");
  EXPECT_EQ(continent_code(Continent::kEurope), "EU");
  EXPECT_EQ(continent_code(Continent::kNorthAmerica), "NA");
}

}  // namespace
}  // namespace cw::net
