#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace cw::net {
namespace {

TEST(IPv4Addr, OctetConstruction) {
  const IPv4Addr addr(192, 168, 1, 255);
  EXPECT_EQ(addr.octet(0), 192);
  EXPECT_EQ(addr.octet(1), 168);
  EXPECT_EQ(addr.octet(2), 1);
  EXPECT_EQ(addr.octet(3), 255);
  EXPECT_EQ(addr.value(), 0xc0a801ffu);
}

TEST(IPv4Addr, ToStringRoundTrip) {
  for (std::uint32_t value : {0u, 0xffffffffu, 0x01020304u, 0x7f000001u}) {
    const IPv4Addr addr(value);
    const auto parsed = IPv4Addr::parse(addr.to_string());
    ASSERT_TRUE(parsed.has_value()) << addr.to_string();
    EXPECT_EQ(parsed->value(), value);
  }
}

class IPv4ParseInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(IPv4ParseInvalid, Rejects) {
  EXPECT_FALSE(IPv4Addr::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Garbage, IPv4ParseInvalid,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.999",
                                           "a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4",
                                           "1.2.3.-4", "0x1.2.3.4", "1.2.3.4/24", "1234"));

TEST(IPv4Addr, StructurePredicates) {
  EXPECT_TRUE(IPv4Addr(1, 2, 3, 255).has_255_octet());
  EXPECT_TRUE(IPv4Addr(1, 255, 3, 4).has_255_octet());
  EXPECT_TRUE(IPv4Addr(255, 2, 3, 4).has_255_octet());
  EXPECT_FALSE(IPv4Addr(1, 2, 3, 4).has_255_octet());

  EXPECT_TRUE(IPv4Addr(1, 2, 3, 255).ends_in_255());
  EXPECT_FALSE(IPv4Addr(1, 255, 3, 4).ends_in_255());

  EXPECT_TRUE(IPv4Addr(10, 20, 0, 0).is_first_of_slash16());
  EXPECT_FALSE(IPv4Addr(10, 20, 0, 1).is_first_of_slash16());
  EXPECT_FALSE(IPv4Addr(10, 20, 1, 0).is_first_of_slash16());
}

TEST(IPv4Addr, ArithmeticAndOrdering) {
  const IPv4Addr base(10, 0, 0, 250);
  EXPECT_EQ((base + 6).to_string(), "10.0.1.0");  // carries into third octet
  EXPECT_LT(IPv4Addr(1, 0, 0, 0), IPv4Addr(2, 0, 0, 0));
}

TEST(Prefix, ContainsAndSize) {
  const auto prefix = Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->size(), 65536u);
  EXPECT_TRUE(prefix->contains(IPv4Addr(10, 1, 255, 255)));
  EXPECT_FALSE(prefix->contains(IPv4Addr(10, 2, 0, 0)));
  EXPECT_EQ(prefix->at(256).to_string(), "10.1.1.0");
}

TEST(Prefix, NormalizesBase) {
  const Prefix prefix(IPv4Addr(10, 1, 2, 3), 24);
  EXPECT_EQ(prefix.base().to_string(), "10.1.2.0");
}

TEST(Prefix, Slash32) {
  const Prefix prefix(IPv4Addr(1, 2, 3, 4), 32);
  EXPECT_EQ(prefix.size(), 1u);
  EXPECT_TRUE(prefix.contains(IPv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(prefix.contains(IPv4Addr(1, 2, 3, 5)));
}

TEST(Prefix, ParseRejectsGarbage) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("banana/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/abc").has_value());
}

TEST(Prefix, ToString) {
  EXPECT_EQ(Prefix(IPv4Addr(192, 0, 2, 0), 24).to_string(), "192.0.2.0/24");
}

}  // namespace
}  // namespace cw::net
