#include "net/ports.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cw::net {
namespace {

TEST(Protocol, NamesRoundTrip) {
  for (std::size_t i = 0; i < kProtocolCount; ++i) {
    const Protocol p = static_cast<Protocol>(i);
    const auto back = protocol_from_name(protocol_name(p));
    ASSERT_TRUE(back.has_value()) << protocol_name(p);
    EXPECT_EQ(*back, p);
  }
}

TEST(Protocol, UnknownNameRejected) {
  EXPECT_FALSE(protocol_from_name("GOPHER").has_value());
  EXPECT_FALSE(protocol_from_name("").has_value());
  EXPECT_FALSE(protocol_from_name("HTTPX").has_value());
}

struct AssignmentCase {
  Port port;
  Protocol protocol;
};

class IanaAssignment : public ::testing::TestWithParam<AssignmentCase> {};

TEST_P(IanaAssignment, Matches) {
  EXPECT_EQ(iana_assignment(GetParam().port), GetParam().protocol);
}

INSTANTIATE_TEST_SUITE_P(
    KnownPorts, IanaAssignment,
    ::testing::Values(AssignmentCase{22, Protocol::kSsh}, AssignmentCase{2222, Protocol::kSsh},
                      AssignmentCase{23, Protocol::kTelnet},
                      AssignmentCase{2323, Protocol::kTelnet},
                      AssignmentCase{80, Protocol::kHttp}, AssignmentCase{8080, Protocol::kHttp},
                      AssignmentCase{7547, Protocol::kHttp}, AssignmentCase{443, Protocol::kTls},
                      AssignmentCase{445, Protocol::kSmb}, AssignmentCase{554, Protocol::kRtsp},
                      AssignmentCase{5060, Protocol::kSip}, AssignmentCase{123, Protocol::kNtp},
                      AssignmentCase{3389, Protocol::kRdp}, AssignmentCase{5555, Protocol::kAdb},
                      AssignmentCase{1911, Protocol::kFox},
                      AssignmentCase{6379, Protocol::kRedis},
                      AssignmentCase{3306, Protocol::kSql},
                      AssignmentCase{17128, Protocol::kUnknown},
                      AssignmentCase{9999, Protocol::kUnknown}));

TEST(Ports, PortsAssignedToIsConsistent) {
  for (std::size_t i = 1; i < kProtocolCount; ++i) {
    const Protocol p = static_cast<Protocol>(i);
    for (Port port : ports_assigned_to(p)) EXPECT_EQ(iana_assignment(port), p);
  }
}

TEST(Ports, PopularPortsContainPaperSet) {
  const auto& ports = popular_ports();
  EXPECT_EQ(ports.size(), 10u);
  for (Port port : {23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443}) {
    EXPECT_NE(std::find(ports.begin(), ports.end(), port), ports.end()) << port;
  }
}

TEST(Ports, GreyNoisePortsIncludeCowriePorts) {
  const auto& ports = greynoise_ports();
  EXPECT_GE(ports.size(), 7u);  // "at least seven popular ports"
  for (Port port : {22, 2222, 23, 2323}) {
    EXPECT_NE(std::find(ports.begin(), ports.end(), port), ports.end()) << port;
  }
}

TEST(Transport, Names) {
  EXPECT_EQ(transport_name(Transport::kTcp), "TCP");
  EXPECT_EQ(transport_name(Transport::kUdp), "UDP");
}

}  // namespace
}  // namespace cw::net
