#include "searchengine/engine.h"

#include <gtest/gtest.h>

#include <set>

namespace cw::search {
namespace {

topology::Deployment deployment_with_services() {
  topology::Deployment deployment;
  {
    topology::VantagePoint vp;
    vp.name = "cloud";
    vp.provider = topology::Provider::kAws;
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kGreyNoise;
    vp.region = net::make_region("SG");
    vp.addresses = {net::IPv4Addr(3, 0, 0, 1), net::IPv4Addr(3, 0, 0, 2)};
    vp.open_ports = {22, 80};
    deployment.add(std::move(vp));
  }
  {
    topology::VantagePoint vp;
    vp.name = "telescope";
    vp.provider = topology::Provider::kOrion;
    vp.type = topology::NetworkType::kTelescope;
    vp.collection = topology::CollectionMethod::kTelescope;
    vp.region = net::make_region("US", "MI");
    vp.addresses = {net::IPv4Addr(71, 96, 0, 1)};
    deployment.add(std::move(vp));
  }
  return deployment;
}

struct Fixture {
  topology::Deployment deployment = deployment_with_services();
  topology::TargetUniverse universe{deployment};
  capture::Collector collector{universe};
  ServiceSearchEngine engine{"Censys", net::kAsnCensys, 1};
  util::Rng rng{7};

  Fixture() { engine.set_crawl_ports({22, 80}); }
  void crawl(util::SimTime t) { engine.crawl(t, universe, collector, rng); }
};

TEST(SearchEngine, CrawlIndexesListeningServices) {
  Fixture f;
  f.crawl(0);
  EXPECT_TRUE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
  EXPECT_TRUE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 2), 80));
  EXPECT_EQ(f.engine.live_size(), 4u);  // 2 addresses x 2 ports
}

TEST(SearchEngine, TelescopeNeverIndexed) {
  Fixture f;
  f.crawl(0);
  EXPECT_FALSE(f.engine.currently_indexed(net::IPv4Addr(71, 96, 0, 1), 22));
  EXPECT_FALSE(f.engine.ever_indexed(net::IPv4Addr(71, 96, 0, 1), 80));
}

TEST(SearchEngine, CrawlProbesAreCapturedAsBenignTraffic) {
  Fixture f;
  f.crawl(0);
  ASSERT_GT(f.collector.store().size(), 0u);
  for (const capture::SessionRecord& record : f.collector.store().records()) {
    EXPECT_EQ(record.src_as, net::kAsnCensys);
    EXPECT_EQ(record.actor, 1u);
    EXPECT_FALSE(record.malicious_truth);
  }
}

TEST(SearchEngine, FullBlocklistPreventsIndexing) {
  Fixture f;
  f.engine.blocklist(net::IPv4Addr(3, 0, 0, 1));
  f.crawl(0);
  EXPECT_FALSE(f.engine.ever_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
  EXPECT_FALSE(f.engine.ever_indexed(net::IPv4Addr(3, 0, 0, 1), 80));
  EXPECT_TRUE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 2), 22));
}

TEST(SearchEngine, BlocklistExceptLeaksExactlyOnePort) {
  Fixture f;
  f.engine.blocklist_except(net::IPv4Addr(3, 0, 0, 1), 22);
  f.crawl(0);
  EXPECT_TRUE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
  EXPECT_FALSE(f.engine.ever_indexed(net::IPv4Addr(3, 0, 0, 1), 80));
}

TEST(SearchEngine, IsBlockedSemantics) {
  Fixture f;
  f.engine.blocklist(net::IPv4Addr(1, 1, 1, 1));
  f.engine.blocklist_except(net::IPv4Addr(2, 2, 2, 2), 80);
  EXPECT_TRUE(f.engine.is_blocked(net::IPv4Addr(1, 1, 1, 1), 22));
  EXPECT_TRUE(f.engine.is_blocked(net::IPv4Addr(1, 1, 1, 1), 80));
  EXPECT_TRUE(f.engine.is_blocked(net::IPv4Addr(2, 2, 2, 2), 22));
  EXPECT_FALSE(f.engine.is_blocked(net::IPv4Addr(2, 2, 2, 2), 80));
  EXPECT_FALSE(f.engine.is_blocked(net::IPv4Addr(3, 3, 3, 3), 80));
}

TEST(SearchEngine, QueryPortReturnsLiveServices) {
  Fixture f;
  f.crawl(0);
  const auto hits = f.engine.query_port(22);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].to_string(), "3.0.0.1");
  EXPECT_EQ(hits[1].to_string(), "3.0.0.2");
  EXPECT_TRUE(f.engine.query_port(443).empty());
}

TEST(SearchEngine, SeededHistoryIsNotLiveButQueryableViaHistory) {
  Fixture f;
  f.engine.seed_history(net::IPv4Addr(9, 9, 9, 9), 80, net::Protocol::kHttp, -1000);
  EXPECT_FALSE(f.engine.currently_indexed(net::IPv4Addr(9, 9, 9, 9), 80));
  EXPECT_TRUE(f.engine.ever_indexed(net::IPv4Addr(9, 9, 9, 9), 80));
  EXPECT_TRUE(f.engine.query_port(80).empty());
  const auto history = f.engine.query_port_history(80);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].to_string(), "9.9.9.9");
}

TEST(SearchEngine, ServiceDroppingOutOfLiveIndexKeepsHistory) {
  Fixture f;
  f.crawl(0);
  ASSERT_TRUE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
  // The service disappears (blocked from now on); the next crawl delists it.
  f.engine.blocklist(net::IPv4Addr(3, 0, 0, 1));
  f.crawl(1000);
  EXPECT_FALSE(f.engine.currently_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
  EXPECT_TRUE(f.engine.ever_indexed(net::IPv4Addr(3, 0, 0, 1), 22));
}

TEST(SearchEngine, BannersAreIndexedAndSearchable) {
  Fixture f;
  f.crawl(0);
  const std::string banner = f.engine.banner_of(net::IPv4Addr(3, 0, 0, 1), 22);
  ASSERT_FALSE(banner.empty());
  EXPECT_EQ(banner.rfind("SSH-2.0-", 0), 0u);
  // Banner search finds the service by its software string.
  const std::string needle = banner.substr(8, 7);  // e.g. "OpenSSH" or "dropbea"
  const auto hits = f.engine.query_banner(needle);
  bool found = false;
  for (const auto addr : hits) {
    if (addr == net::IPv4Addr(3, 0, 0, 1)) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(f.engine.query_banner("definitely-not-a-banner").empty());
}

TEST(SearchEngine, BannerOfUnknownServiceIsEmpty) {
  Fixture f;
  EXPECT_TRUE(f.engine.banner_of(net::IPv4Addr(9, 9, 9, 9), 22).empty());
}

TEST(SearchEngine, SourcePoolIsSmallAndStable) {
  Fixture f;
  f.crawl(0);
  std::set<std::uint32_t> sources;
  for (const capture::SessionRecord& record : f.collector.store().records()) {
    sources.insert(record.src);
  }
  EXPECT_LE(sources.size(), 16u);
}

}  // namespace
}  // namespace cw::search
