#include "capture/dataset.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace cw::capture {
namespace {

EventStore make_store() {
  EventStore store;
  SessionRecord a;
  a.time = 1234;
  a.src = 0xb0001000;
  a.dst = 0x03000001;
  a.src_as = 4134;
  a.port = 22;
  a.transport = net::Transport::kTcp;
  a.handshake_completed = true;
  a.vantage = 2;
  a.neighbor = 1;
  a.actor = 99;
  a.malicious_truth = true;
  store.append(a, "SSH-2.0-x\r\n", proto::Credential{"root", "123456"});

  SessionRecord b;
  b.time = 5678;
  b.src = 0xb0002000;
  b.dst = 0x03000002;
  b.src_as = 174;
  b.port = 80;
  b.transport = net::Transport::kUdp;
  b.vantage = 0;
  b.actor = 7;
  store.append(b, "GET / HTTP/1.1\r\n\r\n", std::nullopt);

  SessionRecord c;  // telescope-style record: nothing retained
  c.time = 9;
  c.src = 1;
  c.dst = 2;
  c.port = 445;
  c.vantage = 1;
  store.append(c, {}, std::nullopt);

  // A duplicate payload to exercise interning.
  store.append(b, "GET / HTTP/1.1\r\n\r\n", std::nullopt);
  return store;
}

TEST(Dataset, BinaryRoundTripPreservesEverything) {
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));

  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->distinct_payloads(), original.distinct_payloads());
  EXPECT_EQ(loaded->distinct_credentials(), original.distinct_credentials());

  for (std::size_t i = 0; i < original.size(); ++i) {
    const SessionRecord& want = original.records()[i];
    const SessionRecord& got = loaded->records()[i];
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.src, want.src);
    EXPECT_EQ(got.dst, want.dst);
    EXPECT_EQ(got.src_as, want.src_as);
    EXPECT_EQ(got.port, want.port);
    EXPECT_EQ(got.transport, want.transport);
    EXPECT_EQ(got.handshake_completed, want.handshake_completed);
    EXPECT_EQ(got.vantage, want.vantage);
    EXPECT_EQ(got.neighbor, want.neighbor);
    EXPECT_EQ(got.actor, want.actor);
    EXPECT_EQ(got.malicious_truth, want.malicious_truth);
    // Ids may be renumbered; content must match.
    ASSERT_EQ(got.payload_id == kNoPayload, want.payload_id == kNoPayload);
    if (want.payload_id != kNoPayload) {
      EXPECT_EQ(loaded->payload(got.payload_id), original.payload(want.payload_id));
    }
    ASSERT_EQ(got.credential_id == kNoCredential, want.credential_id == kNoCredential);
    if (want.credential_id != kNoCredential) {
      EXPECT_EQ(loaded->credential(got.credential_id).username,
                original.credential(want.credential_id).username);
      EXPECT_EQ(loaded->credential(got.credential_id).password,
                original.credential(want.credential_id).password);
    }
  }
}

TEST(Dataset, BinaryPayloadsSurviveRoundTrip) {
  EventStore store;
  SessionRecord record;
  record.port = 443;
  std::string binary;
  for (int i = 0; i < 256; ++i) binary += static_cast<char>(i);
  store.append(record, binary, std::nullopt);

  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(store, buffer));
  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload(loaded->records()[0].payload_id), binary);
}

TEST(Dataset, NewlineBearingCredentialsRoundTrip) {
  EventStore store;
  SessionRecord record;
  record.port = 22;
  store.append(record, "SSH-2.0-x\r\n", proto::Credential{"root\nadmin", "pass\nword"});
  store.append(record, {}, proto::Credential{"a\nb", "c"});
  store.append(record, {}, proto::Credential{"a", "b\nc"});

  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(store, buffer));
  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->distinct_credentials(), 3u);
  const auto credential = [&](std::size_t i) {
    return loaded->credential(loaded->records()[i].credential_id);
  };
  EXPECT_EQ(credential(0).username, "root\nadmin");
  EXPECT_EQ(credential(0).password, "pass\nword");
  EXPECT_EQ(credential(1).username, "a\nb");
  EXPECT_EQ(credential(1).password, "c");
  EXPECT_EQ(credential(2).username, "a");
  EXPECT_EQ(credential(2).password, "b\nc");
}

// Length-prefixed string entry exactly as write_string lays it out
// (native-endian u32 length + raw bytes).
std::string packed_string(const std::string& value) {
  const auto length = static_cast<std::uint32_t>(value.size());
  std::string out(reinterpret_cast<const char*>(&length), sizeof length);
  return out + value;
}

// Rewrites a current-version stream into a version-1 one: patches the
// version field and swaps the (unique) length-prefixed credential blob for
// its legacy '\n'-joined form. Keeps the test independent of the record
// layout.
std::string as_v1_stream(std::string bytes, const std::string& v2_blob,
                         const std::string& v1_blob) {
  bytes[4] = 1;  // version field; bytes 5-7 are already zero
  bytes.erase(24, 24);            // v3 section-flags / frame-section header fields
  bytes.erase(bytes.size() - 4);  // v3 CRC trailer
  const std::string old_entry = packed_string(v2_blob);
  const std::size_t at = bytes.find(old_entry);
  EXPECT_NE(at, std::string::npos);
  if (at != std::string::npos) {
    bytes.replace(at, old_entry.size(), packed_string(v1_blob));
  }
  return bytes;
}

TEST(Dataset, LegacyV1DatasetStillLoads) {
  EventStore store;
  SessionRecord record;
  record.port = 22;
  store.append(record, {}, proto::Credential{"root", "hunter2"});
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(store, buffer));

  // "4:roothunter2" is what v2 interns; a v1 writer stored "root\nhunter2".
  std::stringstream legacy(as_v1_stream(buffer.str(), "4:roothunter2", "root\nhunter2"));
  const auto loaded = read_dataset(legacy);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  const proto::Credential credential = loaded->credential(loaded->records()[0].credential_id);
  EXPECT_EQ(credential.username, "root");
  EXPECT_EQ(credential.password, "hunter2");
}

TEST(Dataset, LegacyV1RejectsAmbiguousMultiNewlineCredential) {
  EventStore store;
  SessionRecord record;
  record.port = 22;
  store.append(record, {}, proto::Credential{"a\nb", "c\nd"});
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(store, buffer));

  // Three newlines: could have been ("a\nb", "c\nd"), ("a", "b\nc\nd"), ...
  // — undecidable under the v1 scheme, so the read must fail, not guess.
  std::stringstream legacy(as_v1_stream(buffer.str(), "3:a\nbc\nd", "a\nb\nc\nd"));
  EXPECT_FALSE(read_dataset(legacy).has_value());
}

TEST(Dataset, RejectsBadMagic) {
  std::stringstream buffer("NOPE garbage");
  EXPECT_FALSE(read_dataset(buffer).has_value());
}

TEST(Dataset, RejectsTruncatedStream) {
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));
  const std::string full = buffer.str();
  for (const std::size_t cut : {std::size_t{4}, std::size_t{16}, full.size() / 2,
                                full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(read_dataset(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Dataset, RejectsWrongVersion) {
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));
  std::string bytes = buffer.str();
  bytes[4] = 99;  // version field
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(read_dataset(corrupted).has_value());
}

TEST(Dataset, EmptyStoreRoundTrips) {
  EventStore empty;
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(empty, buffer));
  const auto loaded = read_dataset(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
}

EventStore make_second_store() {
  EventStore store;
  SessionRecord record;
  record.time = 777;
  record.src = 42;
  record.port = 23;
  record.vantage = 3;
  store.append(record, "telnet-banner", proto::Credential{"admin", "admin"});
  return store;
}

TEST(Dataset, SegmentsRoundTripBackToBack) {
  const EventStore first = make_store();
  const EventStore second = make_second_store();
  const EventStore empty;  // an epoch with no captured records still seals

  std::stringstream buffer;
  ASSERT_TRUE(write_dataset_segments({&first, &second, &empty}, buffer));
  const auto loaded = read_dataset_segments(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].size(), first.size());
  EXPECT_EQ((*loaded)[1].size(), second.size());
  EXPECT_EQ((*loaded)[2].size(), 0u);
  EXPECT_EQ((*loaded)[0].distinct_payloads(), first.distinct_payloads());
  EXPECT_EQ((*loaded)[1].payload((*loaded)[1].records()[0].payload_id), "telnet-banner");
  EXPECT_EQ((*loaded)[1].credential((*loaded)[1].records()[0].credential_id).username, "admin");
}

TEST(Dataset, SegmentsEmptyStreamIsZeroSegments) {
  std::stringstream buffer;
  const auto loaded = read_dataset_segments(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(Dataset, SegmentsRejectGarbageAtBoundary) {
  const EventStore first = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(first, buffer));
  // A well-formed first segment followed by bytes that are not a segment
  // header must fail the whole read — not silently return one segment.
  std::stringstream corrupted(buffer.str() + "NOPE garbage");
  EXPECT_FALSE(read_dataset_segments(corrupted).has_value());
}

TEST(Dataset, SegmentsRejectTruncatedSecondSegment) {
  const EventStore first = make_store();
  const EventStore second = make_second_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset_segments({&first, &second}, buffer));
  const std::string full = buffer.str();
  std::stringstream first_only;
  ASSERT_TRUE(write_dataset(first, first_only));
  const std::size_t boundary = first_only.str().size();
  // Cut inside the second segment: after its magic, and just before its end.
  for (const std::size_t cut : {boundary + 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(read_dataset_segments(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Dataset, CrcTrailerRejectsEveryRecordAreaBitFlip) {
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));
  const std::string full = buffer.str();

  // Flip one bit inside interned payload text (structurally valid bytes a
  // pre-CRC reader accepted silently) and inside the trailer itself.
  const std::size_t in_payload = full.find("HTTP/1.1");
  ASSERT_NE(in_payload, std::string::npos);
  for (const std::size_t at : {in_payload, in_payload + 4, full.size() - 2}) {
    std::string bytes = full;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
    std::stringstream corrupted(bytes);
    std::string error;
    EXPECT_FALSE(read_dataset(corrupted, &error).has_value()) << "flip at " << at;
    EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
  }
}

TEST(Dataset, MissingCrcTrailerIsRejected) {
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));
  const std::string full = buffer.str();
  std::stringstream clipped(full.substr(0, full.size() - 4));
  std::string error;
  EXPECT_FALSE(read_dataset(clipped, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Dataset, LegacyV2DatasetStillLoads) {
  // A v2 stream is a v3 stream minus the section-flags / frame-offset header
  // fields and the CRC trailer (the table and record layouts are shared).
  const EventStore original = make_store();
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset(original, buffer));
  std::string bytes = buffer.str();
  bytes[4] = 2;                   // version field; bytes 5-7 are already zero
  bytes.erase(24, 24);            // v3 header extension
  bytes.erase(bytes.size() - 4);  // v3 CRC trailer

  std::stringstream legacy(bytes);
  const auto loaded = read_dataset(legacy);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->distinct_payloads(), original.distinct_payloads());
  EXPECT_EQ(loaded->credential(loaded->records()[0].credential_id).password, "123456");
}

TEST(Dataset, SegmentsStreamingCallbackDeliversEachSegmentOnce) {
  const EventStore first = make_store();
  const EventStore second = make_second_store();
  const EventStore empty;
  std::stringstream buffer;
  ASSERT_TRUE(write_dataset_segments({&first, &second, &empty}, buffer));

  std::vector<std::size_t> sizes;
  ASSERT_TRUE(read_dataset_segments(
      buffer, [&sizes](EventStore&& segment) {
        sizes.push_back(segment.size());
        return true;
      }));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{first.size(), second.size(), 0u}));

  // A sink that aborts mid-stream reports failure, not a silent partial read.
  std::stringstream again(buffer.str());
  std::size_t delivered = 0;
  std::string error;
  EXPECT_FALSE(read_dataset_segments(
      again, [&delivered](EventStore&&) { return ++delivered < 2; }, &error));
  EXPECT_EQ(delivered, 2u);
}

TEST(Dataset, CsvExportContainsAnnotatedRows) {
  topology::Deployment deployment;
  topology::VantagePoint vp0;
  vp0.name = "cloud-a";
  vp0.type = topology::NetworkType::kCloud;
  vp0.addresses = {net::IPv4Addr(3, 0, 0, 1)};
  deployment.add(std::move(vp0));
  topology::VantagePoint vp1;
  vp1.name = "telescope";
  vp1.type = topology::NetworkType::kTelescope;
  vp1.addresses = {net::IPv4Addr(71, 96, 0, 1)};
  deployment.add(std::move(vp1));
  topology::VantagePoint vp2;
  vp2.name = "edu";
  vp2.type = topology::NetworkType::kEducation;
  vp2.addresses = {net::IPv4Addr(171, 64, 0, 1)};
  deployment.add(std::move(vp2));

  const EventStore store = make_store();
  std::stringstream out;
  write_csv(store, deployment, out);
  const std::string csv = out.str();
  // Header + 4 records.
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
  EXPECT_NE(csv.find("time_ms,src,src_asn"), std::string::npos);
  EXPECT_NE(csv.find("edu"), std::string::npos);
  EXPECT_NE(csv.find("telescope"), std::string::npos);
  EXPECT_NE(csv.find("root"), std::string::npos);     // credential username
  EXPECT_NE(csv.find("123456"), std::string::npos);   // credential password
  EXPECT_NE(csv.find("3.0.0.1"), std::string::npos);  // dotted-quad dst
}

}  // namespace
}  // namespace cw::capture
