#include "capture/firewall.h"

#include <gtest/gtest.h>

#include "capture/collector.h"
#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"
#include "topology/universe.h"

namespace cw::capture {
namespace {

topology::Deployment one_vantage() {
  topology::Deployment deployment;
  topology::VantagePoint vp;
  vp.name = "cloud";
  vp.provider = topology::Provider::kAws;
  vp.type = topology::NetworkType::kCloud;
  vp.collection = topology::CollectionMethod::kGreyNoise;
  vp.region = net::make_region("SG");
  vp.addresses = {net::IPv4Addr(3, 0, 0, 1)};
  vp.open_ports = {22, 80};
  deployment.add(std::move(vp));
  return deployment;
}

ScanEvent exploit_event() {
  ScanEvent event;
  event.time = 500;
  event.src = net::IPv4Addr(0xb0000001);
  event.dst = net::IPv4Addr(3, 0, 0, 1);
  event.dst_port = 80;
  event.payload = proto::exploit_payload(proto::ExploitKind::kLog4Shell, 1);
  event.malicious_intent = true;
  return event;
}

ScanEvent benign_event() {
  ScanEvent event;
  event.time = 600;
  event.src = net::IPv4Addr(0xb0000002);
  event.dst = net::IPv4Addr(3, 0, 0, 1);
  event.dst_port = 80;
  event.payload = proto::http_benign_request(0);
  return event;
}

class FirewallTest : public ::testing::Test {
 protected:
  FirewallTest()
      : deployment_(one_vantage()),
        universe_(deployment_),
        collector_(universe_),
        engine_(ids::curated_engine()) {}

  topology::Deployment deployment_;
  topology::TargetUniverse universe_;
  Collector collector_;
  ids::RuleEngine engine_;
};

TEST_F(FirewallTest, UnprotectedVantagePassesEverything) {
  SignatureFirewall firewall(engine_, 1.0);
  EXPECT_FALSE(firewall.inspect(exploit_event(), deployment_.at(0)));
  EXPECT_EQ(firewall.inspected(), 0u);
}

TEST_F(FirewallTest, FullDropRateBlocksMatchingPayloads) {
  SignatureFirewall firewall(engine_, 1.0);
  firewall.protect(0);
  EXPECT_TRUE(firewall.inspect(exploit_event(), deployment_.at(0)));
  EXPECT_EQ(firewall.dropped(), 1u);
}

TEST_F(FirewallTest, BenignPayloadsAlwaysPass) {
  SignatureFirewall firewall(engine_, 1.0);
  firewall.protect(0);
  EXPECT_FALSE(firewall.inspect(benign_event(), deployment_.at(0)));
  ScanEvent empty = benign_event();
  empty.payload.clear();
  EXPECT_FALSE(firewall.inspect(empty, deployment_.at(0)));
}

TEST_F(FirewallTest, ZeroDropRatePassesExploits) {
  SignatureFirewall firewall(engine_, 0.0);
  firewall.protect(0);
  EXPECT_FALSE(firewall.inspect(exploit_event(), deployment_.at(0)));
  EXPECT_EQ(firewall.inspected(), 1u);
  EXPECT_EQ(firewall.dropped(), 0u);
}

TEST_F(FirewallTest, PerFlowVerdictIsDeterministic) {
  SignatureFirewall a(engine_, 0.5, 99);
  SignatureFirewall b(engine_, 0.5, 99);
  a.protect(0);
  b.protect(0);
  for (int i = 0; i < 50; ++i) {
    ScanEvent event = exploit_event();
    event.time = i * 1000;
    EXPECT_EQ(a.inspect(event, deployment_.at(0)), b.inspect(event, deployment_.at(0))) << i;
  }
}

TEST_F(FirewallTest, PartialDropRateIsApproximatelyHonored) {
  SignatureFirewall firewall(engine_, 0.5);
  firewall.protect(0);
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    ScanEvent event = exploit_event();
    event.time = i;
    event.src = net::IPv4Addr(0xb0000000u + i);
    if (firewall.inspect(event, deployment_.at(0))) ++dropped;
  }
  EXPECT_NEAR(dropped, 1000, 80);
}

TEST_F(FirewallTest, CollectorHookDropsBeforeCapture) {
  SignatureFirewall firewall(engine_, 1.0);
  firewall.protect(0);
  collector_.set_firewall([&firewall](const ScanEvent& event,
                                      const topology::VantagePoint& vp) {
    return firewall.inspect(event, vp);
  });
  EXPECT_FALSE(collector_.deliver(exploit_event()));
  EXPECT_TRUE(collector_.deliver(benign_event()));
  EXPECT_EQ(collector_.dropped_firewalled(), 1u);
  EXPECT_EQ(collector_.store().size(), 1u);
}

TEST_F(FirewallTest, CredentialBruteForceBypassesSignatures) {
  // Inline IPS sees the SSH banner, not the credentials: brute force passes.
  SignatureFirewall firewall(engine_, 1.0);
  firewall.protect(0);
  ScanEvent event;
  event.dst = net::IPv4Addr(3, 0, 0, 1);
  event.dst_port = 22;
  event.payload = proto::ssh_client_banner();
  event.credential = proto::Credential{"root", "root"};
  event.malicious_intent = true;
  EXPECT_FALSE(firewall.inspect(event, deployment_.at(0)));
}

}  // namespace
}  // namespace cw::capture
