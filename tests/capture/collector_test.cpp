#include "capture/collector.h"

#include <gtest/gtest.h>

#include "capture/interner.h"
#include "proto/payloads.h"

namespace cw::capture {
namespace {

topology::Deployment three_method_deployment() {
  topology::Deployment deployment;
  {
    topology::VantagePoint vp;
    vp.name = "greynoise";
    vp.provider = topology::Provider::kAws;
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kGreyNoise;
    vp.region = net::make_region("SG");
    vp.addresses = {net::IPv4Addr(3, 0, 0, 1)};
    vp.open_ports = {22, 23, 80};
    deployment.add(std::move(vp));
  }
  {
    topology::VantagePoint vp;
    vp.name = "honeytrap";
    vp.provider = topology::Provider::kStanford;
    vp.type = topology::NetworkType::kEducation;
    vp.collection = topology::CollectionMethod::kHoneytrap;
    vp.region = net::make_region("US", "CA");
    vp.addresses = {net::IPv4Addr(171, 64, 0, 1)};
    deployment.add(std::move(vp));
  }
  {
    topology::VantagePoint vp;
    vp.name = "telescope";
    vp.provider = topology::Provider::kOrion;
    vp.type = topology::NetworkType::kTelescope;
    vp.collection = topology::CollectionMethod::kTelescope;
    vp.region = net::make_region("US", "MI");
    vp.addresses = {net::IPv4Addr(71, 96, 0, 1)};
    deployment.add(std::move(vp));
  }
  return deployment;
}

ScanEvent event_to(net::IPv4Addr dst, net::Port port, std::string payload = {},
                   std::optional<proto::Credential> credential = std::nullopt) {
  ScanEvent event;
  event.time = 1000;
  event.src = net::IPv4Addr(0xb0001000);
  event.src_as = 4134;
  event.dst = dst;
  event.dst_port = port;
  event.payload = std::move(payload);
  event.malicious_intent = credential.has_value();
  event.credential = std::move(credential);
  event.intended_protocol = net::iana_assignment(port);
  event.actor = 99;
  return event;
}

TEST(Collector, DropsUnmonitoredDestinations) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  EXPECT_FALSE(collector.deliver(event_to(net::IPv4Addr(8, 8, 8, 8), 80)));
  EXPECT_EQ(collector.dropped_unmonitored(), 1u);
  EXPECT_EQ(collector.store().size(), 0u);
}

TEST(Collector, TelescopeKeepsNoPayloadOrHandshake) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  auto event = event_to(net::IPv4Addr(71, 96, 0, 1), 22, proto::ssh_client_banner(),
                        proto::Credential{"root", "root"});
  ASSERT_TRUE(collector.deliver(event));
  const SessionRecord& record = collector.store().records().front();
  EXPECT_FALSE(record.handshake_completed);
  EXPECT_EQ(record.payload_id, kNoPayload);
  EXPECT_EQ(record.credential_id, kNoCredential);
  EXPECT_EQ(record.src_as, 4134u);
}

TEST(Collector, TelescopeAcceptsAnyPort) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  EXPECT_TRUE(collector.deliver(event_to(net::IPv4Addr(71, 96, 0, 1), 17128)));
}

TEST(Collector, GreyNoiseRefusesClosedPorts) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  EXPECT_FALSE(collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 9999)));
  EXPECT_EQ(collector.dropped_refused(), 1u);
}

TEST(Collector, GreyNoiseCowrieCapturesCredentials) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  auto event = event_to(net::IPv4Addr(3, 0, 0, 1), 22, proto::ssh_client_banner(),
                        proto::Credential{"root", "hunter2"});
  ASSERT_TRUE(collector.deliver(event));
  const SessionRecord& record = collector.store().records().front();
  EXPECT_TRUE(record.handshake_completed);
  ASSERT_NE(record.credential_id, kNoCredential);
  const proto::Credential credential = collector.store().credential(record.credential_id);
  EXPECT_EQ(credential.username, "root");
  EXPECT_EQ(credential.password, "hunter2");
}

TEST(Collector, GreyNoiseNonCowriePortDropsCredential) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  auto event = event_to(net::IPv4Addr(3, 0, 0, 1), 80, "GET / HTTP/1.1\r\n\r\n",
                        proto::Credential{"root", "x"});
  ASSERT_TRUE(collector.deliver(event));
  const SessionRecord& record = collector.store().records().front();
  EXPECT_EQ(record.credential_id, kNoCredential);
  ASSERT_NE(record.payload_id, kNoPayload);
  EXPECT_EQ(collector.store().payload(record.payload_id), "GET / HTTP/1.1\r\n\r\n");
}

TEST(Collector, HoneytrapRecordsClientFirstPayload) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  auto event = event_to(net::IPv4Addr(171, 64, 0, 1), 8080, "GET / HTTP/1.1\r\n\r\n");
  event.intended_protocol = net::Protocol::kHttp;
  ASSERT_TRUE(collector.deliver(event));
  const SessionRecord& record = collector.store().records().front();
  EXPECT_TRUE(record.handshake_completed);
  EXPECT_NE(record.payload_id, kNoPayload);
}

TEST(Collector, HoneytrapMissesServerFirstClients) {
  // A MySQL client waits for the server greeting; a protocol-mute honeypot
  // records the connection but no payload (Section 6's lower-bound caveat).
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  auto event = event_to(net::IPv4Addr(171, 64, 0, 1), 3306, proto::mysql_login_probe());
  event.intended_protocol = net::Protocol::kSql;
  ASSERT_TRUE(collector.deliver(event));
  const SessionRecord& record = collector.store().records().front();
  EXPECT_EQ(record.payload_id, kNoPayload);
  EXPECT_TRUE(record.handshake_completed);
}

TEST(Collector, TelescopeSinkBypassesStore) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  int sunk = 0;
  collector.set_telescope_sink([&](const ScanEvent&, const topology::Target&) {
    ++sunk;
    return true;
  });
  EXPECT_TRUE(collector.deliver(event_to(net::IPv4Addr(71, 96, 0, 1), 80)));
  EXPECT_TRUE(collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "x")));
  EXPECT_EQ(sunk, 1);
  EXPECT_EQ(collector.store().size(), 1u);  // only the honeypot record
}

TEST(ClientSpeaksFirst, ProtocolTable) {
  EXPECT_TRUE(client_speaks_first(net::Protocol::kHttp));
  EXPECT_TRUE(client_speaks_first(net::Protocol::kTls));
  EXPECT_TRUE(client_speaks_first(net::Protocol::kSsh));
  EXPECT_FALSE(client_speaks_first(net::Protocol::kSql));
  EXPECT_FALSE(client_speaks_first(net::Protocol::kUnknown));
}

TEST(IsCowriePort, Table) {
  EXPECT_TRUE(is_cowrie_port(22));
  EXPECT_TRUE(is_cowrie_port(2222));
  EXPECT_TRUE(is_cowrie_port(23));
  EXPECT_TRUE(is_cowrie_port(2323));
  EXPECT_FALSE(is_cowrie_port(80));
}

TEST(Interner, DeduplicatesStrings) {
  Interner interner;
  const std::uint32_t a = interner.intern("payload");
  const std::uint32_t b = interner.intern("payload");
  const std::uint32_t c = interner.intern("other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.at(a), "payload");
  EXPECT_EQ(interner.at(c), "other");
}

TEST(EventStore, VantageIndexTracksAppends) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "a"));
  EXPECT_EQ(collector.store().for_vantage(0).size(), 1u);
  collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "b"));
  collector.deliver(event_to(net::IPv4Addr(171, 64, 0, 1), 80, "c"));
  EXPECT_EQ(collector.store().for_vantage(0).size(), 2u);
  EXPECT_EQ(collector.store().for_vantage(1).size(), 1u);
  EXPECT_TRUE(collector.store().for_vantage(77).empty());
}

TEST(EventStore, DistinctPayloadsCounted) {
  const topology::Deployment deployment = three_method_deployment();
  const topology::TargetUniverse universe(deployment);
  Collector collector(universe);
  collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "same"));
  collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "same"));
  collector.deliver(event_to(net::IPv4Addr(3, 0, 0, 1), 80, "different"));
  EXPECT_EQ(collector.store().distinct_payloads(), 2u);
  EXPECT_EQ(collector.store().size(), 3u);
}

}  // namespace
}  // namespace cw::capture
