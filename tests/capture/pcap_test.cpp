#include "capture/pcap.h"

#include <gtest/gtest.h>

#include <sstream>

#include "proto/payloads.h"

namespace cw::capture {
namespace {

std::uint32_t read_u32_le(const std::string& data, std::size_t offset) {
  return static_cast<std::uint8_t>(data[offset]) |
         (static_cast<std::uint8_t>(data[offset + 1]) << 8) |
         (static_cast<std::uint8_t>(data[offset + 2]) << 16) |
         (static_cast<std::uint8_t>(data[offset + 3]) << 24);
}

EventStore store_with(int records) {
  EventStore store;
  for (int i = 0; i < records; ++i) {
    SessionRecord record;
    record.time = i * util::kSecond;
    record.src = 0xb0000000u + static_cast<std::uint32_t>(i);
    record.dst = 0x03000001;
    record.port = 80;
    record.handshake_completed = true;
    store.append(record, "GET / HTTP/1.1\r\n\r\n", std::nullopt);
  }
  return store;
}

TEST(Pcap, GlobalHeaderLayout) {
  std::stringstream out;
  EXPECT_EQ(write_pcap(store_with(0), out), 0u);
  const std::string bytes = out.str();
  ASSERT_EQ(bytes.size(), 24u);  // just the global header
  EXPECT_EQ(read_u32_le(bytes, 0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(bytes[4], 2);                          // version major
  EXPECT_EQ(bytes[6], 4);                          // version minor
  EXPECT_EQ(read_u32_le(bytes, 20), 1u);           // LINKTYPE_ETHERNET
}

TEST(Pcap, PacketRecordsMatchCount) {
  std::stringstream out;
  EXPECT_EQ(write_pcap(store_with(5), out), 5u);
  const std::string bytes = out.str();
  // Frame: 14 eth + 20 ip + 20 tcp + 18 payload = 72 bytes; plus 16-byte
  // per-packet header.
  EXPECT_EQ(bytes.size(), 24u + 5u * (16u + 72u));
}

TEST(Pcap, TimestampsCarryEpochOffset) {
  std::stringstream out;
  PcapWriteOptions options;
  options.epoch_offset_seconds = 1625097600;
  write_pcap(store_with(2), out, options);
  const std::string bytes = out.str();
  // First packet header directly after the 24-byte global header.
  EXPECT_EQ(read_u32_le(bytes, 24), 1625097600u);
  // Second packet: one simulated second later.
  EXPECT_EQ(read_u32_le(bytes, 24 + 16 + 72), 1625097601u);
}

TEST(Pcap, Ipv4HeaderCarriesAddressesAndProtocol) {
  std::stringstream out;
  write_pcap(store_with(1), out);
  const std::string bytes = out.str();
  const std::size_t ip_offset = 24 + 16 + 14;  // headers + ethernet
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[ip_offset]), 0x45u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[ip_offset + 9]), 0x06u);  // TCP
  // Destination address 3.0.0.1 big-endian at offset 16 of the IP header.
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[ip_offset + 16]), 3u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[ip_offset + 19]), 1u);
}

TEST(Pcap, TelescopeRecordsBecomeBareSyns) {
  EventStore store;
  SessionRecord record;
  record.time = 0;
  record.src = 1;
  record.dst = 2;
  record.port = 445;
  record.handshake_completed = false;
  store.append(record, {}, std::nullopt);

  std::stringstream out;
  ASSERT_EQ(write_pcap(store, out), 1u);
  const std::string bytes = out.str();
  const std::size_t tcp_offset = 24 + 16 + 14 + 20;
  // Flags byte (offset 13 within TCP header) must be SYN (0x02).
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[tcp_offset + 13]), 0x02u);
  // No payload: frame is exactly eth + ip + tcp.
  EXPECT_EQ(bytes.size(), 24u + 16u + 14u + 20u + 20u);
}

TEST(Pcap, UdpRecordsUseUdpHeader) {
  EventStore store;
  SessionRecord record;
  record.time = 0;
  record.src = 1;
  record.dst = 2;
  record.port = 123;
  record.transport = net::Transport::kUdp;
  store.append(record, proto::ntp_client(), std::nullopt);

  std::stringstream out;
  ASSERT_EQ(write_pcap(store, out), 1u);
  const std::string bytes = out.str();
  const std::size_t ip_offset = 24 + 16 + 14;
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[ip_offset + 9]), 0x11u);  // UDP
  // eth + ip + udp(8) + 48-byte NTP payload.
  EXPECT_EQ(bytes.size(), 24u + 16u + 14u + 20u + 8u + 48u);
}

TEST(Pcap, SnaplenTruncatesPayloads) {
  EventStore store;
  SessionRecord record;
  record.port = 80;
  record.handshake_completed = true;
  store.append(record, std::string(1000, 'A'), std::nullopt);
  std::stringstream out;
  PcapWriteOptions options;
  options.snaplen = 100;
  ASSERT_EQ(write_pcap(store, out, options), 1u);
  EXPECT_EQ(out.str().size(), 24u + 16u + 14u + 20u + 20u + 100u);
}

}  // namespace
}  // namespace cw::capture
