// FrameView: the spill-file half of the out-of-core segment store. The
// contract under test is bit-identity — a frame mapped out of its serialized
// section answers the complete analysis query surface with exactly the bytes
// of the hot frame it was flattened from, across unmap/remap cycles and a
// cold restart (dictionaries reloaded from the inline section); structurally
// damaged sections are rejected at open(), never half-mapped.
#include "capture/frame_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "capture/dataset.h"
#include "proto/fingerprint.h"

namespace cw::capture {
namespace {

constexpr net::Port kPorts[] = {22, 23, 80, 443, 8080};

class FrameIoTest : public ::testing::Test {
 protected:
  FrameIoTest() {
    auto add_vantage = [&](const char* name, topology::NetworkType type,
                           topology::CollectionMethod method) {
      topology::VantagePoint vp;
      vp.name = name;
      vp.provider = topology::Provider::kAws;
      vp.type = type;
      vp.collection = method;
      vp.region = net::make_region("US", "CA");
      vp.addresses = {net::IPv4Addr(3, 0, 0, 1), net::IPv4Addr(3, 0, 0, 2)};
      deployment_.add(std::move(vp));
    };
    add_vantage("cloud", topology::NetworkType::kCloud, topology::CollectionMethod::kGreyNoise);
    add_vantage("edu", topology::NetworkType::kEducation, topology::CollectionMethod::kHoneytrap);
    add_vantage("tel", topology::NetworkType::kTelescope, topology::CollectionMethod::kTelescope);

    // A few hundred records spread over vantages and ports, with enough
    // payload/credential variety to exercise all four dictionaries and both
    // posting container kinds.
    for (std::uint32_t i = 0; i < 400; ++i) {
      SessionRecord record;
      record.vantage = static_cast<topology::VantageId>(i % 3);
      record.port = kPorts[i % 5];
      record.src = 0x0A000000u + i * 17;
      record.src_as = static_cast<net::Asn>(100 + i % 7);
      record.neighbor = static_cast<std::uint16_t>(i % 2);
      record.time = static_cast<util::SimTime>(i);
      record.actor = static_cast<ActorId>(i % 11);
      record.handshake_completed = record.vantage != 2;
      std::string payload;
      if (i % 3 == 0) payload = "GET /probe/" + std::to_string(i % 13) + " HTTP/1.1\r\n\r\n";
      std::optional<proto::Credential> credential;
      if (i % 4 == 0) credential = proto::Credential{"root", "pw" + std::to_string(i % 5)};
      store_.append(record, payload, credential);
    }
    store_.freeze();

    SessionFrame::BuildOptions options;
    options.verdict = [](const SessionRecord& record) {
      if (record.credential_id != kNoCredential) return SessionFrame::Verdict::kMalicious;
      if (record.payload_id != kNoPayload) return SessionFrame::Verdict::kBenign;
      return SessionFrame::Verdict::kUnobservable;
    };
    frame_ = SessionFrame::build(store_, deployment_, std::move(options));
  }

  // Writes the frame section blob alone to a temp file; returns its path.
  std::string write_section(const std::vector<std::uint8_t>& blob, const char* name) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    return path;
  }

  // The full query surface of `got`, element for element against `want`.
  // Dictionary text is only compared when `got` carries dictionaries: a view
  // opened without load_dicts binds the code columns but leaves the target's
  // dictionaries alone (a live spill's target frame already holds the
  // experiment's shared dicts; a blank test target holds none).
  void ExpectFramesIdentical(const SessionFrame& got, const SessionFrame& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::uint32_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got.time(i), want.time(i)) << i;
      ASSERT_EQ(got.src(i), want.src(i)) << i;
      ASSERT_EQ(got.src_as(i), want.src_as(i)) << i;
      ASSERT_EQ(got.port(i), want.port(i)) << i;
      ASSERT_EQ(got.vantage(i), want.vantage(i)) << i;
      ASSERT_EQ(got.neighbor(i), want.neighbor(i)) << i;
      ASSERT_EQ(got.payload_id(i), want.payload_id(i)) << i;
      ASSERT_EQ(got.credential_id(i), want.credential_id(i)) << i;
      ASSERT_EQ(got.actor(i), want.actor(i)) << i;
      ASSERT_EQ(got.handshake(i), want.handshake(i)) << i;
      ASSERT_EQ(got.network_type(i), want.network_type(i)) << i;
    }

    ASSERT_EQ(got.has_verdicts(), want.has_verdicts());
    if (want.has_verdicts()) {
      for (std::uint32_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.verdict(i), want.verdict(i));
    }
    ASSERT_EQ(got.has_protocols(), want.has_protocols());
    if (want.has_protocols()) {
      for (std::uint32_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got.protocol(i), want.protocol(i)) << i;
      }
    }
    ASSERT_EQ(got.has_codes(), want.has_codes());
    if (want.has_codes()) {
      for (std::size_t c = 0; c < kCodedColumns; ++c) {
        const auto column = static_cast<CodedColumn>(c);
        const auto got_codes = got.codes(column);
        const auto want_codes = want.codes(column);
        ASSERT_EQ(got_codes.size(), want_codes.size());
        for (std::size_t i = 0; i < want_codes.size(); ++i) {
          ASSERT_EQ(got_codes[i], want_codes[i]) << "column " << c << " row " << i;
        }
        if (got.dict(column) != nullptr) {
          // Text, not pointer identity: a cold restart reloads the
          // dictionaries from the inline section.
          const auto& got_dict = *got.dict(column);
          const auto& want_dict = *want.dict(column);
          ASSERT_EQ(got_dict.size(), want_dict.size());
          for (std::uint32_t code = 0; code < want_dict.size(); ++code) {
            ASSERT_EQ(got_dict.at(code), want_dict.at(code));
          }
        }
      }
    }

    for (const net::Port port : kPorts) {
      EXPECT_EQ(got.for_port(port).to_vector(), want.for_port(port).to_vector()) << port;
    }
    EXPECT_TRUE(got.for_port(9999).empty());
    for (topology::VantageId v = 0; v < 3; ++v) {
      const auto got_span = got.for_vantage(v);
      const auto want_span = want.for_vantage(v);
      ASSERT_EQ(got_span.size(), want_span.size()) << "vantage " << v;
      EXPECT_TRUE(std::equal(got_span.begin(), got_span.end(), want_span.begin()));
      for (const net::Port port : kPorts) {
        EXPECT_EQ(got.for_vantage_port(v, port).to_vector(),
                  want.for_vantage_port(v, port).to_vector())
            << "vantage " << v << " port " << port;
      }
    }
    for (const auto type :
         {topology::NetworkType::kCloud, topology::NetworkType::kEducation,
          topology::NetworkType::kTelescope}) {
      const auto got_part = got.for_network(type);
      const auto want_part = want.for_network(type);
      ASSERT_EQ(got_part.size(), want_part.size());
      EXPECT_TRUE(std::equal(got_part.begin(), got_part.end(), want_part.begin()));
    }
  }

  topology::Deployment deployment_;
  EventStore store_;
  SessionFrame frame_;
};

TEST_F(FrameIoTest, MappedFrameMatchesHotFrameEverywhere) {
  const std::vector<std::uint8_t> blob = FrameView::serialize(frame_);
  const std::string path = write_section(blob, "frame_io_map.cwfs");

  FrameView view;
  std::string error;
  ASSERT_TRUE(view.open(path, 0, blob.size(), deployment_, {}, &error)) << error;
  EXPECT_EQ(view.record_count(), frame_.size());
  EXPECT_FALSE(view.mapped());  // open() parses, only map() holds the mapping

  SessionFrame mapped;
  ASSERT_TRUE(view.map(mapped, &error)) << error;
  EXPECT_TRUE(view.mapped());
  ExpectFramesIdentical(mapped, frame_);
  std::remove(path.c_str());
}

TEST_F(FrameIoTest, UnmapKeepsSizesAndRemapRestoresEverything) {
  const std::vector<std::uint8_t> blob = FrameView::serialize(frame_);
  const std::string path = write_section(blob, "frame_io_remap.cwfs");

  FrameView view;
  std::string error;
  ASSERT_TRUE(view.open(path, 0, blob.size(), deployment_, {}, &error)) << error;
  SessionFrame mapped;
  ASSERT_TRUE(view.map(mapped, &error)) << error;

  view.unmap(mapped);
  EXPECT_FALSE(view.mapped());
  EXPECT_EQ(mapped.size(), frame_.size());  // sizes survive the unbind
  // Vantage metadata stays answerable while cold (it is resident state).
  EXPECT_EQ(mapped.network_of(0), topology::NetworkType::kCloud);
  EXPECT_EQ(mapped.collection_of(1), topology::CollectionMethod::kHoneytrap);

  // Two full unmap/remap cycles: the kernel may return a different address
  // each time; the query surface must not care.
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(view.map(mapped, &error)) << error;
    ExpectFramesIdentical(mapped, frame_);
    view.unmap(mapped);
  }
  std::remove(path.c_str());
}

TEST_F(FrameIoTest, ColdRestartReloadsDictionariesFromInlineSection) {
  const std::vector<std::uint8_t> blob = FrameView::serialize(frame_);
  const std::string path = write_section(blob, "frame_io_cold.cwfs");

  // load_dicts = true is the cold-restart path: no shared experiment dicts
  // exist, so the view rebuilds them from the inline dictionary section.
  FrameView view;
  FrameView::Options options;
  options.load_dicts = true;
  std::string error;
  ASSERT_TRUE(view.open(path, 0, blob.size(), deployment_, options, &error)) << error;
  SessionFrame mapped;
  ASSERT_TRUE(view.map(mapped, &error)) << error;
  ASSERT_TRUE(mapped.has_codes());
  for (std::size_t c = 0; c < kCodedColumns; ++c) {
    // Reloaded, not shared: distinct object, identical text.
    EXPECT_NE(mapped.dict(static_cast<CodedColumn>(c)).get(),
              frame_.dict(static_cast<CodedColumn>(c)).get());
  }
  ExpectFramesIdentical(mapped, frame_);
  std::remove(path.c_str());
}

TEST_F(FrameIoTest, SerializationIsDeterministic) {
  // The spill file must be a pure function of the frame (sorted
  // directories), so repeated serialization is byte-identical.
  EXPECT_EQ(FrameView::serialize(frame_), FrameView::serialize(frame_));
}

TEST_F(FrameIoTest, OpenRejectsTruncatedAndCorruptSections) {
  const std::vector<std::uint8_t> blob = FrameView::serialize(frame_);
  std::string error;

  // Truncations: cut the section at several depths, including mid-header.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{16}, std::size_t{255},
                                 blob.size() / 2, blob.size() - 1}) {
    const std::vector<std::uint8_t> cut(blob.begin(),
                                        blob.begin() + static_cast<std::ptrdiff_t>(keep));
    const std::string path = write_section(cut, "frame_io_cut.cwfs");
    FrameView view;
    EXPECT_FALSE(view.open(path, 0, cut.size(), deployment_, {}, &error))
        << "kept " << keep << " bytes";
    std::remove(path.c_str());
  }

  // Bad magic.
  std::vector<std::uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  const std::string magic_path = write_section(bad_magic, "frame_io_magic.cwfs");
  FrameView view;
  EXPECT_FALSE(view.open(magic_path, 0, bad_magic.size(), deployment_, {}, &error));
  std::remove(magic_path.c_str());
}

TEST_F(FrameIoTest, ProbeFindsTheSectionInsideASpillFile) {
  // The spill layout: one segment written by write_dataset with its frame.
  const std::string path = ::testing::TempDir() + "frame_io_probe.cwds";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(write_dataset(store_, &frame_, out));
  }
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::string error;
  ASSERT_TRUE(probe_frame_section(path, offset, length, &error)) << error;
  EXPECT_GT(offset, 0u);
  EXPECT_GT(length, 0u);

  FrameView::Options options;
  options.load_dicts = true;
  FrameView view;
  ASSERT_TRUE(view.open(path, offset, length, deployment_, options, &error)) << error;
  SessionFrame mapped;
  ASSERT_TRUE(view.map(mapped, &error)) << error;
  ExpectFramesIdentical(mapped, frame_);

  // A file written without a frame (v3 with no section) probes false.
  const std::string bare_path = ::testing::TempDir() + "frame_io_bare.cwds";
  {
    std::ofstream out(bare_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(write_dataset(store_, out));
  }
  EXPECT_FALSE(probe_frame_section(bare_path, offset, length, &error));
  std::remove(path.c_str());
  std::remove(bare_path.c_str());
}

}  // namespace
}  // namespace cw::capture
