#include "capture/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cw::capture {
namespace {

SessionRecord record_at(topology::VantageId vantage, std::uint32_t src = 1) {
  SessionRecord record;
  record.vantage = vantage;
  record.src = src;
  record.port = 22;
  return record;
}

TEST(EventStore, CredentialRoundTrip) {
  EventStore store;
  store.append(record_at(0), {}, proto::Credential{"root", "123456"});
  const std::uint32_t id = store.records()[0].credential_id;
  ASSERT_NE(id, kNoCredential);
  EXPECT_EQ(store.credential(id).username, "root");
  EXPECT_EQ(store.credential(id).password, "123456");
}

TEST(EventStore, CredentialWithNewlineUsernameRoundTrips) {
  // Cowrie-style SSH capture does observe usernames containing '\n'; the
  // old "username\npassword" join split on the first newline and corrupted
  // both fields.
  EventStore store;
  store.append(record_at(0), {}, proto::Credential{"root\nadmin", "pass\nword"});
  store.append(record_at(0), {}, proto::Credential{"", "only-password"});
  store.append(record_at(0), {}, proto::Credential{"only-username", ""});
  store.append(record_at(0), {}, proto::Credential{"with:colon", "p:w"});

  const auto check = [&](std::size_t i, const std::string& username,
                         const std::string& password) {
    const std::uint32_t id = store.records()[i].credential_id;
    ASSERT_NE(id, kNoCredential);
    EXPECT_EQ(store.credential(id).username, username);
    EXPECT_EQ(store.credential(id).password, password);
  };
  check(0, "root\nadmin", "pass\nword");
  check(1, "", "only-password");
  check(2, "only-username", "");
  check(3, "with:colon", "p:w");
}

TEST(EventStore, NewlineCredentialsDoNotCollide) {
  // Under the '\n'-joined encoding, ("a\nb", "c") and ("a", "b\nc") both
  // interned as "a\nb\nc" and collapsed into one credential id.
  EventStore store;
  store.append(record_at(0), {}, proto::Credential{"a\nb", "c"});
  store.append(record_at(0), {}, proto::Credential{"a", "b\nc"});
  EXPECT_NE(store.records()[0].credential_id, store.records()[1].credential_id);
  EXPECT_EQ(store.distinct_credentials(), 2u);
}

TEST(EventStore, DecodeCredentialRejectsMalformedText) {
  EXPECT_FALSE(EventStore::decode_credential("").has_value());
  EXPECT_FALSE(EventStore::decode_credential("no-colon").has_value());
  EXPECT_FALSE(EventStore::decode_credential(":missing-length").has_value());
  EXPECT_FALSE(EventStore::decode_credential("abc:def").has_value());
  EXPECT_FALSE(EventStore::decode_credential("9:short").has_value());
  // Round trip through the encoder always decodes.
  const proto::Credential credential{"user\n:9", "pw"};
  const auto decoded =
      EventStore::decode_credential(EventStore::encode_credential(credential));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, credential);
}

TEST(EventStore, ForVantageIndexRebuildsAfterAppend) {
  EventStore store;
  store.append(record_at(2), {}, std::nullopt);
  EXPECT_EQ(store.for_vantage(2).size(), 1u);
  EXPECT_TRUE(store.for_vantage(5).empty());
  store.append(record_at(5), {}, std::nullopt);
  EXPECT_EQ(store.for_vantage(5).size(), 1u);
  EXPECT_EQ(store.for_vantage(2).size(), 1u);
  EXPECT_TRUE(store.for_vantage(99).empty());
}

TEST(EventStore, MovePreservesContentsAndIndex) {
  EventStore store;
  store.append(record_at(1), "payload", proto::Credential{"u", "p"});
  store.freeze();
  EventStore moved = std::move(store);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.for_vantage(1).size(), 1u);
  EXPECT_EQ(moved.payload(moved.records()[0].payload_id), "payload");
  EXPECT_EQ(moved.credential(moved.records()[0].credential_id).username, "u");
}

TEST(EventStore, AppendAfterFreezeInvalidatesIndexAndBumpsEpoch) {
  EventStore store;
  store.append(record_at(1), {}, std::nullopt);
  store.freeze();
  const std::uint64_t frozen_epoch = store.index_epoch();
  EXPECT_EQ(store.for_vantage(1).size(), 1u);

  // Regression: an append into a frozen store must invalidate the index
  // (the next reader sees the new record) and advance the epoch so frozen
  // readers (SessionFrame) can detect the staleness.
  store.append(record_at(1), {}, std::nullopt);
  EXPECT_GT(store.index_epoch(), frozen_epoch);

  // Appends into an already-invalid index do not churn the epoch again
  // until the next freeze.
  const std::uint64_t after_append = store.index_epoch();
  store.append(record_at(1), {}, std::nullopt);
  EXPECT_EQ(store.index_epoch(), after_append);

  // The next reader rebuild sees every appended record.
  EXPECT_EQ(store.for_vantage(1).size(), 3u);
  EXPECT_GT(store.index_epoch(), after_append);
}

TEST(EventStore, PinCountingBalances) {
  EventStore store;
  store.append(record_at(1), {}, std::nullopt);
  store.freeze();
  EXPECT_EQ(store.reader_pins(), 0);
  store.pin_readers();
  store.pin_readers();
  EXPECT_EQ(store.reader_pins(), 2);
  store.unpin_readers();
  EXPECT_EQ(store.reader_pins(), 1);
  store.unpin_readers();
  EXPECT_EQ(store.reader_pins(), 0);
}

TEST(EventStore, MoveTransfersIndexEpochAndUidCoherently) {
  EventStore store;
  store.append(record_at(3), "payload", std::nullopt);
  store.freeze();
  const std::uint64_t uid = store.uid();
  const std::uint64_t epoch = store.index_epoch();

  // Regression: the old compiler-generated moves left the index-validity
  // flag, epoch, and uid behind, so the moved-to store either rebuilt a
  // valid index from scratch (epoch churn) or — worse — a uid-keyed
  // memoization kept serving verdicts for ids the dead store interned.
  EventStore moved = std::move(store);
  EXPECT_EQ(moved.uid(), uid);
  EXPECT_EQ(moved.index_epoch(), epoch);
  EXPECT_EQ(moved.for_vantage(3).size(), 1u);
  // Still the same epoch: the index came across valid, no rebuild happened.
  EXPECT_EQ(moved.index_epoch(), epoch);

  // The moved-from store is a coherent empty store with a fresh identity:
  // new uid (its interned-id space is gone), invalid index, bumped epoch so
  // any surviving derived structure reads as detached.
  EXPECT_EQ(store.size(), 0u);
  EXPECT_NE(store.uid(), uid);
  EXPECT_GT(store.index_epoch(), epoch);
  EXPECT_EQ(store.reader_pins(), 0);
  EXPECT_TRUE(store.for_vantage(3).empty());
}

TEST(EventStore, MoveAssignmentTransfersReadState) {
  EventStore source;
  source.append(record_at(1), {}, std::nullopt);
  source.append(record_at(1), {}, std::nullopt);
  source.freeze();
  const std::uint64_t uid = source.uid();
  const std::uint64_t epoch = source.index_epoch();

  EventStore target;
  target.append(record_at(9), {}, std::nullopt);
  target.freeze();
  target = std::move(source);
  EXPECT_EQ(target.uid(), uid);
  EXPECT_EQ(target.index_epoch(), epoch);
  EXPECT_EQ(target.for_vantage(1).size(), 2u);
  EXPECT_TRUE(target.for_vantage(9).empty());
  EXPECT_EQ(source.size(), 0u);
  EXPECT_NE(source.uid(), uid);
}

TEST(EventStore, UidsAreDistinctAcrossStores) {
  EventStore a;
  EventStore b;
  EXPECT_NE(a.uid(), b.uid());
}

#ifndef NDEBUG
TEST(EventStoreDeathTest, MovingAPinnedStoreAsserts) {
  // A pinned reader (a SessionFrame) holds spans into the store; moving it
  // out from under the reader is a logic error the debug build traps.
  EXPECT_DEATH(
      {
        EventStore store;
        store.append(record_at(1), {}, std::nullopt);
        store.pin_readers();
        EventStore moved = std::move(store);
        static_cast<void>(moved);
      },
      "pin");
}
#endif

TEST(EventStore, ConcurrentForVantageReadersSeeOneConsistentIndex) {
  // Simulation phase: single-threaded appends across a few vantages.
  EventStore store;
  constexpr topology::VantageId kVantages = 7;
  constexpr std::uint32_t kPerVantage = 250;
  for (std::uint32_t i = 0; i < kPerVantage; ++i) {
    for (topology::VantageId v = 0; v < kVantages; ++v) {
      store.append(record_at(v, /*src=*/i), {}, std::nullopt);
    }
  }

  // Analysis phase: N reader threads race on the first-use index build (no
  // freeze() here on purpose). Run under -DCW_SANITIZE=thread to verify.
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&store, &mismatch] {
      for (int iteration = 0; iteration < 50; ++iteration) {
        for (topology::VantageId v = 0; v < kVantages; ++v) {
          const auto& indices = store.for_vantage(v);
          if (indices.size() != kPerVantage) mismatch.store(true);
          for (const std::uint32_t index : indices) {
            if (store.records()[index].vantage != v) mismatch.store(true);
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace cw::capture
