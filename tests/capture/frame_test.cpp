#include "capture/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proto/fingerprint.h"
#include "proto/payloads.h"
#include "runner/thread_pool.h"

namespace cw::capture {
namespace {

class FrameTest : public ::testing::Test {
 protected:
  FrameTest() {
    auto add_vantage = [&](const char* name, topology::NetworkType type,
                           topology::CollectionMethod method) {
      topology::VantagePoint vp;
      vp.name = name;
      vp.provider = topology::Provider::kAws;
      vp.type = type;
      vp.collection = method;
      vp.region = net::make_region("US", "CA");
      vp.addresses = {net::IPv4Addr(3, 0, 0, 1), net::IPv4Addr(3, 0, 0, 2)};
      deployment_.add(std::move(vp));
    };
    add_vantage("cloud", topology::NetworkType::kCloud, topology::CollectionMethod::kGreyNoise);
    add_vantage("edu", topology::NetworkType::kEducation, topology::CollectionMethod::kHoneytrap);
    add_vantage("tel", topology::NetworkType::kTelescope, topology::CollectionMethod::kTelescope);
  }

  void add(topology::VantageId vantage, net::Port port, std::uint32_t src,
           std::string payload = {}, std::optional<proto::Credential> credential = std::nullopt) {
    SessionRecord record;
    record.vantage = vantage;
    record.port = port;
    record.src = src;
    record.src_as = static_cast<net::Asn>(100 + src);
    record.neighbor = static_cast<std::uint16_t>(src % 2);
    record.time = static_cast<util::SimTime>(store_.size());
    record.handshake_completed = vantage != 2;
    store_.append(record, payload, credential);
  }

  void populate() {
    add(0, 22, 1, proto::ssh_client_banner(), proto::Credential{"root", "root"});
    add(1, 80, 2, "GET / HTTP/1.1\r\n\r\n");
    add(2, 23, 3);
    add(0, 22, 4, proto::ssh_client_banner());
    add(0, 80, 5, "GET /shell HTTP/1.1\r\n\r\n");
    add(2, 22, 6);
  }

  topology::Deployment deployment_;
  EventStore store_;
};

TEST_F(FrameTest, ColumnsMirrorRecords) {
  populate();
  const SessionFrame frame = SessionFrame::build(store_, deployment_);
  ASSERT_EQ(frame.size(), store_.size());
  for (std::uint32_t i = 0; i < frame.size(); ++i) {
    const SessionRecord& record = store_.records()[i];
    EXPECT_EQ(frame.time(i), record.time);
    EXPECT_EQ(frame.src(i), record.src);
    EXPECT_EQ(frame.src_as(i), record.src_as);
    EXPECT_EQ(frame.port(i), record.port);
    EXPECT_EQ(frame.vantage(i), record.vantage);
    EXPECT_EQ(frame.neighbor(i), record.neighbor);
    EXPECT_EQ(frame.payload_id(i), record.payload_id);
    EXPECT_EQ(frame.credential_id(i), record.credential_id);
    EXPECT_EQ(frame.actor(i), record.actor);
    EXPECT_EQ(frame.has_payload(i), record.payload_id != kNoPayload);
    EXPECT_EQ(frame.has_credential(i), record.credential_id != kNoCredential);
    EXPECT_EQ(frame.handshake(i), record.handshake_completed);
    EXPECT_EQ(frame.network_type(i), deployment_.at(record.vantage).type);
  }
  EXPECT_EQ(frame.network_of(0), topology::NetworkType::kCloud);
  EXPECT_EQ(frame.collection_of(1), topology::CollectionMethod::kHoneytrap);
}

TEST_F(FrameTest, PostingListsAreAscendingAndComplete) {
  populate();
  const SessionFrame frame = SessionFrame::build(store_, deployment_);

  std::size_t covered = 0;
  for (const net::Port port : {net::Port{22}, net::Port{23}, net::Port{80}}) {
    const std::vector<std::uint32_t> postings = frame.for_port(port).to_vector();
    covered += postings.size();
    for (std::size_t k = 0; k < postings.size(); ++k) {
      EXPECT_EQ(frame.port(postings[k]), port);
      if (k > 0) {
        EXPECT_LT(postings[k - 1], postings[k]);
      }
    }
  }
  EXPECT_EQ(covered, frame.size());
  EXPECT_TRUE(frame.for_port(443).empty());

  covered = 0;
  for (const auto type :
       {topology::NetworkType::kCloud, topology::NetworkType::kEducation,
        topology::NetworkType::kTelescope}) {
    const auto& partition = frame.for_network(type);
    covered += partition.size();
    for (const std::uint32_t index : partition) EXPECT_EQ(frame.network_type(index), type);
  }
  EXPECT_EQ(covered, frame.size());

  // Per-(vantage, port) slices agree with a filtered per-vantage scan.
  for (topology::VantageId v = 0; v < 3; ++v) {
    for (const net::Port port : {net::Port{22}, net::Port{23}, net::Port{80}}) {
      std::vector<std::uint32_t> expected;
      for (const std::uint32_t index : frame.for_vantage(v)) {
        if (frame.port(index) == port) expected.push_back(index);
      }
      EXPECT_EQ(frame.for_vantage_port(v, port).to_vector(), expected);
    }
  }
}

TEST_F(FrameTest, VerdictColumnEvaluatesCallbackOncePerRecord) {
  populate();
  SessionFrame::BuildOptions options;
  options.verdict = [](const SessionRecord& record) {
    if (record.credential_id != kNoCredential) return SessionFrame::Verdict::kMalicious;
    if (record.payload_id != kNoPayload) return SessionFrame::Verdict::kBenign;
    return SessionFrame::Verdict::kUnobservable;
  };
  const SessionFrame frame = SessionFrame::build(store_, deployment_, std::move(options));
  ASSERT_TRUE(frame.has_verdicts());
  EXPECT_EQ(frame.verdict(0), SessionFrame::Verdict::kMalicious);
  EXPECT_EQ(frame.verdict(1), SessionFrame::Verdict::kBenign);
  EXPECT_EQ(frame.verdict(2), SessionFrame::Verdict::kUnobservable);

  std::vector<std::uint32_t> all(frame.size());
  for (std::uint32_t i = 0; i < frame.size(); ++i) all[i] = i;
  const auto [malicious, benign] = frame.count_verdicts(all);
  EXPECT_EQ(malicious, 1u);
  EXPECT_EQ(benign, 3u);
}

TEST_F(FrameTest, ProtocolColumnFingerprintsDistinctPayloads) {
  populate();
  const SessionFrame with = SessionFrame::build(store_, deployment_);
  ASSERT_TRUE(with.has_protocols());
  for (std::uint32_t i = 0; i < with.size(); ++i) {
    const SessionRecord& record = store_.records()[i];
    const net::Protocol expected =
        record.payload_id == kNoPayload
            ? net::Protocol::kUnknown
            : proto::Fingerprinter::identify(store_.payload(record.payload_id));
    EXPECT_EQ(with.protocol(i), expected);
  }

  SessionFrame::BuildOptions skip;
  skip.fingerprint_payloads = false;
  const SessionFrame without = SessionFrame::build(store_, deployment_, std::move(skip));
  EXPECT_FALSE(without.has_protocols());
}

TEST_F(FrameTest, ShardedBuildMatchesSequential) {
  for (std::uint32_t i = 0; i < 2000; ++i) {
    add(static_cast<topology::VantageId>(i % 3), i % 2 == 0 ? 22 : 80, i,
        i % 5 == 0 ? proto::ssh_client_banner() : std::string{});
  }
  const SessionFrame sequential = SessionFrame::build(store_, deployment_);
  runner::ThreadPool pool(4);
  SessionFrame::BuildOptions options;
  options.pool = &pool;
  const SessionFrame sharded = SessionFrame::build(store_, deployment_, std::move(options));

  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::uint32_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential.src(i), sharded.src(i));
    ASSERT_EQ(sequential.protocol(i), sharded.protocol(i));
  }
  for (const net::Port port : {net::Port{22}, net::Port{80}}) {
    EXPECT_EQ(sequential.for_port(port).to_vector(), sharded.for_port(port).to_vector());
  }
  for (topology::VantageId v = 0; v < 3; ++v) {
    EXPECT_EQ(sequential.for_vantage_port(v, 22).to_vector(),
              sharded.for_vantage_port(v, 22).to_vector());
  }
}

TEST_F(FrameTest, BuildPinsStoreAndDestructionUnpins) {
  populate();
  EXPECT_EQ(store_.reader_pins(), 0);
  {
    const SessionFrame frame = SessionFrame::build(store_, deployment_);
    EXPECT_EQ(store_.reader_pins(), 1);
    EXPECT_TRUE(frame.attached());

    // A second frame over the same store pins independently.
    const SessionFrame other = SessionFrame::build(store_, deployment_);
    EXPECT_EQ(store_.reader_pins(), 2);
  }
  EXPECT_EQ(store_.reader_pins(), 0);
}

TEST_F(FrameTest, MoveTransfersPinOwnership) {
  populate();
  SessionFrame frame = SessionFrame::build(store_, deployment_);
  EXPECT_EQ(store_.reader_pins(), 1);
  SessionFrame moved = std::move(frame);
  EXPECT_EQ(store_.reader_pins(), 1);
  EXPECT_TRUE(moved.attached());
  {
    SessionFrame assigned = SessionFrame::build(store_, deployment_);
    EXPECT_EQ(store_.reader_pins(), 2);
    assigned = std::move(moved);  // drops assigned's pin, adopts moved's
    EXPECT_EQ(store_.reader_pins(), 1);
    EXPECT_TRUE(assigned.attached());
  }
  EXPECT_EQ(store_.reader_pins(), 0);
}

TEST_F(FrameTest, AppendAfterBuildDetaches) {
  populate();
  SessionFrame frame = SessionFrame::build(store_, deployment_);
  EXPECT_TRUE(frame.attached());
#ifndef NDEBUG
  // Appending while the frame still pins the store is a logic error and
  // trips the store's debug assertion.
  EXPECT_DEATH(add(0, 22, 99), "append\\(\\) while a frozen reader holds a pin");
#endif
  // Release the pin (as the frame's destructor would) and append: the epoch
  // bump detaches the frame immediately, before any index rebuild.
  store_.unpin_readers();
  add(0, 22, 99);
  EXPECT_FALSE(frame.attached());
  store_.pin_readers();  // restore so the frame's destructor balances
}

}  // namespace
}  // namespace cw::capture
