#include "adversary/policy.h"

#include <gtest/gtest.h>

namespace cw::adversary {
namespace {

TEST(AdaptivePolicy, RaisesOnSuccessAndClampsAtOne) {
  AdaptivePolicyConfig config;
  config.initial_probability = 0.5;
  config.raise = 2.0;
  AdaptivePolicy policy(config);
  policy.observe(true);
  EXPECT_DOUBLE_EQ(policy.end_round(), 1.0);
  // Further successful rounds stay pinned at the ceiling.
  policy.observe(true);
  EXPECT_DOUBLE_EQ(policy.end_round(), 1.0);
  EXPECT_DOUBLE_EQ(policy.probability(), 1.0);
  EXPECT_EQ(policy.successes(), 2u);
  EXPECT_EQ(policy.attempts(), 2u);
}

TEST(AdaptivePolicy, ZeroSuccessStreakDecaysToFloor) {
  AdaptivePolicyConfig config;
  config.initial_probability = 0.8;
  config.min_probability = 0.05;
  config.decay = 0.5;
  config.patience = 2;
  AdaptivePolicy policy(config);
  // The first barren round is within patience: no movement yet.
  policy.observe(false);
  EXPECT_DOUBLE_EQ(policy.end_round(), 0.8);
  EXPECT_EQ(policy.barren_streak(), 1);
  // Once patience is exhausted every further barren round decays, and a long
  // streak converges to the floor instead of oscillating above it.
  for (int i = 0; i < 20; ++i) {
    policy.observe(false);
    policy.end_round();
  }
  EXPECT_DOUBLE_EQ(policy.probability(), 0.05);
  EXPECT_EQ(policy.successes(), 0u);
  EXPECT_GE(policy.barren_streak(), config.patience);
}

TEST(AdaptivePolicy, SuccessResetsBarrenStreak) {
  AdaptivePolicyConfig config;
  config.initial_probability = 0.4;
  config.raise = 1.5;
  config.patience = 3;
  AdaptivePolicy policy(config);
  policy.observe(false);
  policy.end_round();
  policy.observe(false);
  policy.end_round();
  EXPECT_EQ(policy.barren_streak(), 2);
  policy.observe(true);
  policy.end_round();
  EXPECT_EQ(policy.barren_streak(), 0);
  EXPECT_DOUBLE_EQ(policy.probability(), 0.6);
}

TEST(AdaptivePolicy, InitialProbabilityIsClampedToValidRange) {
  AdaptivePolicyConfig config;
  config.initial_probability = 7.0;
  config.min_probability = 0.1;
  EXPECT_DOUBLE_EQ(AdaptivePolicy(config).probability(), 1.0);
  config.initial_probability = 0.001;  // below the floor
  EXPECT_DOUBLE_EQ(AdaptivePolicy(config).probability(), 0.1);
}

TEST(AdaptivePolicy, NonAdaptiveFreezesProbabilityButCountsRounds) {
  AdaptivePolicyConfig config;
  config.initial_probability = 0.3;
  config.adaptive = false;
  AdaptivePolicy policy(config);
  policy.observe(true);
  EXPECT_DOUBLE_EQ(policy.end_round(), 0.3);
  for (int i = 0; i < 10; ++i) {
    policy.observe(false);
    policy.end_round();
  }
  EXPECT_DOUBLE_EQ(policy.probability(), 0.3);
  EXPECT_EQ(policy.rounds(), 11u);
}

TEST(TtlPolicy, ShrinksUnderPressureDownToFloor) {
  TtlPolicyConfig config;
  config.initial_ttl = 8 * util::kHour;
  config.min_ttl = util::kHour;
  config.shrink = 0.5;
  config.tolerable_attacks = 2;
  TtlPolicy policy(config);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 5; ++i) policy.record_attack();
    policy.end_epoch();
  }
  // 8h halves three times to the 1h floor and stays there.
  EXPECT_EQ(policy.ttl(), util::kHour);
  EXPECT_EQ(policy.attacks(), 50u);
  EXPECT_EQ(policy.epochs(), 10u);
}

TEST(TtlPolicy, GrowsWhenQuietUpToCeiling) {
  TtlPolicyConfig config;
  config.initial_ttl = util::kDay;
  config.max_ttl = 2 * util::kDay;
  config.grow = 1.5;
  TtlPolicy policy(config);
  EXPECT_EQ(policy.end_epoch(), static_cast<util::SimDuration>(1.5 * util::kDay));
  EXPECT_EQ(policy.end_epoch(), 2 * util::kDay);  // clamped
  EXPECT_EQ(policy.end_epoch(), 2 * util::kDay);
}

TEST(TtlPolicy, TolerableLoadHoldsTtlSteady) {
  TtlPolicyConfig config;
  config.initial_ttl = 6 * util::kHour;
  config.tolerable_attacks = 10;
  TtlPolicy policy(config);
  for (int i = 0; i < 10; ++i) policy.record_attack();  // exactly tolerable
  EXPECT_EQ(policy.end_epoch(), 6 * util::kHour);
}

TEST(TtlPolicy, InitialTtlClampedIntoBounds) {
  TtlPolicyConfig config;
  config.initial_ttl = 10 * util::kDay;
  config.max_ttl = util::kDay;
  EXPECT_EQ(TtlPolicy(config).ttl(), util::kDay);
  config.initial_ttl = util::kMinute;
  config.min_ttl = util::kHour;
  config.max_ttl = util::kDay;
  EXPECT_EQ(TtlPolicy(config).ttl(), util::kHour);
}

}  // namespace
}  // namespace cw::adversary
