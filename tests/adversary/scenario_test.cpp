#include "adversary/scenario.h"

#include <gtest/gtest.h>

#include "adversary/adaptive.h"
#include "adversary/colocation.h"
#include "agents/population.h"
#include "capture/collector.h"
#include "sim/engine.h"

namespace cw::adversary {
namespace {

// Two cloud vantages from distinct providers in one region, so
// colocated_clouds() yields exactly one probe-able city pair.
struct AdversaryWorld {
  topology::Deployment deployment;
  std::unique_ptr<topology::TargetUniverse> universe;
  std::unique_ptr<capture::Collector> collector;
  sim::Engine engine;
  agents::AgentContext ctx;

  AdversaryWorld() {
    topology::VantagePoint aws;
    aws.id = 0;
    aws.name = "AWS/AP-SG";
    aws.provider = topology::Provider::kAws;
    aws.type = topology::NetworkType::kCloud;
    aws.region = net::make_region("SG");
    aws.addresses = topology::Deployment::allocate_block(net::IPv4Addr(3, 0, 7, 1), 32);
    aws.open_ports = {22, 80};
    deployment.add(std::move(aws));

    topology::VantagePoint gcp;
    gcp.id = 1;
    gcp.name = "Google/AP-SG";
    gcp.provider = topology::Provider::kGoogle;
    gcp.type = topology::NetworkType::kCloud;
    gcp.region = net::make_region("SG");
    gcp.addresses = topology::Deployment::allocate_block(net::IPv4Addr(34, 1, 0, 1), 32);
    gcp.open_ports = {22, 80};
    deployment.add(std::move(gcp));

    universe = std::make_unique<topology::TargetUniverse>(deployment);
    collector = std::make_unique<capture::Collector>(*universe);
    ctx.engine = &engine;
    ctx.universe = universe.get();
    ctx.collector = collector.get();
    ctx.window_end = util::kWeek;
  }
};

TEST(MovingTargetDefense, PlacesServicesOnDistinctCloudAddresses) {
  AdversaryWorld world;
  MovingTargetConfig config;
  config.services = 8;
  MovingTargetDefense defense(*world.universe, config, util::Rng(11));
  EXPECT_EQ(defense.services(), 8u);
  // Every resident address answers record_attack with a hit, exactly once
  // per address (they are distinct).
  EXPECT_EQ(defense.hits(), 0u);
  EXPECT_TRUE(defense.record_attack(net::IPv4Addr(0)) == false);
  EXPECT_EQ(defense.misses(), 1u);
}

TEST(MovingTargetDefense, RotationMovesServicesAndCountsEpochs) {
  AdversaryWorld world;
  MovingTargetConfig config;
  config.services = 4;
  config.ttl.initial_ttl = 6 * util::kHour;
  config.ttl.min_ttl = util::kHour;
  MovingTargetDefense defense(*world.universe, config, util::Rng(11));
  defense.start(world.engine, util::kWeek);
  world.engine.run_until(util::kWeek);
  // ~4 services x ~28 expirations/week; the exact count is seeded, the
  // floor is what matters: rotation actually ran.
  EXPECT_GT(defense.rotations(), 20u);
  EXPECT_EQ(defense.ttl_policy().epochs(), 6u);  // one eval epoch per full day
}

TEST(MovingTargetDefense, StaticPlacementNeverRotates) {
  AdversaryWorld world;
  MovingTargetConfig config;
  config.services = 4;
  config.rotate = false;
  MovingTargetDefense defense(*world.universe, config, util::Rng(11));
  defense.start(world.engine, util::kWeek);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(defense.rotations(), 0u);
  EXPECT_FALSE(defense.rotates());
}

TEST(MovingTargetDefense, IdenticalSeedsGiveIdenticalPlacement) {
  AdversaryWorld world;
  MovingTargetConfig config;
  config.services = 6;
  MovingTargetDefense a(*world.universe, config, util::Rng(42));
  MovingTargetDefense b(*world.universe, config, util::Rng(42));
  // Same seed, same universe: the placements agree address for address, so
  // an attack that hits one hits the other.
  for (const auto& target : world.universe->targets()) {
    EXPECT_EQ(a.record_attack(target.address), b.record_attack(target.address));
  }
  EXPECT_EQ(a.hits(), 6u);
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.misses(), b.misses());
}

TEST(AdaptiveAttacker, StaticWorldRailsProbabilityToOne) {
  AdversaryWorld world;
  AdaptiveAttackerConfig config;
  config.sources = 2;
  config.round = util::kDay;
  config.policy.initial_probability = 0.3;
  // No defense: every attack lands, so the adaptive policy raises through
  // every round up to the ceiling.
  AdaptiveAttacker attacker(300, util::Rng(7), config, nullptr);
  attacker.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_DOUBLE_EQ(attacker.policy().probability(), 1.0);
  EXPECT_EQ(attacker.policy().successes(), attacker.policy().attempts());
  EXPECT_GT(attacker.known_services(), 0u);
  EXPECT_GT(world.collector->store().size(), 0u);
}

TEST(AdaptiveAttacker, RotatingDefenseProducesMisses) {
  AdversaryWorld world;
  MovingTargetConfig mtd;
  mtd.services = 4;
  mtd.ttl.initial_ttl = 4 * util::kHour;
  mtd.ttl.min_ttl = util::kHour;
  auto defense =
      std::make_shared<MovingTargetDefense>(*world.universe, mtd, util::Rng(11));
  defense->start(world.engine, util::kWeek);

  AdaptiveAttackerConfig config;
  config.sources = 2;
  config.round = util::kDay;
  AdaptiveAttacker attacker(301, util::Rng(7), config, defense);
  attacker.start(world.ctx);
  world.engine.run_until(util::kWeek);
  // 64 cloud targets, 4 live services: most explore attacks miss.
  EXPECT_GT(defense->misses(), defense->hits());
  EXPECT_LT(attacker.policy().successes(), attacker.policy().attempts());
}

TEST(CoLocationProber, ProbesCrossProviderPairsAndLocalizes) {
  AdversaryWorld world;
  CoLocationProberConfig config;
  config.share_rate = 1.0;   // the synthetic world always shares
  config.detect_rate = 1.0;  // and the probe always detects it
  config.passes = 1;
  CoLocationProber prober(302, util::Rng(9), config, /*world_seed=*/77);
  prober.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(prober.pairs_probed(), 1u);  // one city, one AWS-GCP pair
  EXPECT_EQ(prober.pairs_shared(), 1u);
  // Binary search over the 32-address victim vantage: log2(32) = 5 steps.
  EXPECT_EQ(prober.localization_probes(), 5u);
  // 2 lock/check probes + 5 localization probes hit the capture path.
  EXPECT_EQ(world.collector->store().size(), 7u);
}

TEST(CoLocationProber, ZeroShareRateProbesButNeverLocalizes) {
  AdversaryWorld world;
  CoLocationProberConfig config;
  config.share_rate = 0.0;
  config.passes = 2;
  CoLocationProber prober(303, util::Rng(9), config, /*world_seed=*/77);
  prober.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(prober.pairs_probed(), 2u);
  EXPECT_EQ(prober.pairs_shared(), 0u);
  EXPECT_EQ(prober.localization_probes(), 0u);
}

TEST(Scenario, InstallNoneIsANoOp) {
  AdversaryWorld world;
  agents::Population population;
  ScenarioConfig config;  // kind = kNone
  install(population, config, *world.universe, 123);
  EXPECT_EQ(population.size(), 0u);
}

TEST(Scenario, InstallAddsTheConfiguredActors) {
  AdversaryWorld world;
  {
    agents::Population population;
    ScenarioConfig config;
    config.kind = ScenarioKind::kFixedAttackers;
    config.attackers = 3;
    install(population, config, *world.universe, 123);
    EXPECT_EQ(population.size(), 3u);  // no defense agent in the fixed world
  }
  {
    agents::Population population;
    ScenarioConfig config;
    config.kind = ScenarioKind::kMovingTarget;
    config.attackers = 3;
    install(population, config, *world.universe, 123);
    EXPECT_EQ(population.size(), 4u);  // defense agent + attackers
  }
  {
    agents::Population population;
    ScenarioConfig config;
    config.kind = ScenarioKind::kClusterFamilies;
    config.families = 5;
    install(population, config, *world.universe, 123);
    EXPECT_EQ(population.size(), 5u);
    for (const auto& actor : population.actors()) {
      EXPECT_TRUE(actor->is_malicious());
      EXPECT_GE(actor->id(), agents::Population::kFirstPopulationActorId);
    }
  }
}

TEST(Scenario, InstalledActorIdsContinueAfterExistingMembers) {
  AdversaryWorld world;
  agents::Population population;
  ScenarioConfig config;
  config.kind = ScenarioKind::kColocation;
  config.probers = 2;
  install(population, config, *world.universe, 123);
  ASSERT_EQ(population.size(), 2u);
  const capture::ActorId first = population.actors()[0]->id();
  EXPECT_EQ(first, agents::Population::kFirstPopulationActorId);
  EXPECT_EQ(population.actors()[1]->id(), first + 1);
  EXPECT_EQ(population.next_actor_id(), first + 2);
}

TEST(Scenario, KindNamesAreStable) {
  EXPECT_EQ(scenario_kind_name(ScenarioKind::kNone), "none");
  EXPECT_EQ(scenario_kind_name(ScenarioKind::kMovingTarget), "moving-target");
  EXPECT_EQ(scenario_kind_name(ScenarioKind::kClusterFamilies), "cluster-families");
}

}  // namespace
}  // namespace cw::adversary
