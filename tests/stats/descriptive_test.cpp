#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cw::stats {
namespace {

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({-2, 2}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({5}), 5.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> values = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.125), 5.0);
}

TEST(Quantile, ClampsOutOfRange) {
  const std::vector<double> values = {1, 2};
  EXPECT_DOUBLE_EQ(quantile(values, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 2.0), 2.0);
}

TEST(Quantile, EmptyInputIsNaN) {
  // An empty sample has no quantiles; the guard also prevents the
  // values.size() - 1 size_t underflow.
  EXPECT_TRUE(std::isnan(quantile({}, 0.0)));
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(quantile({}, 1.0)));
  EXPECT_FALSE(std::isnan(quantile({7.0}, 0.5)));
}

TEST(FoldIncrease, Basic) {
  EXPECT_DOUBLE_EQ(fold_increase({6, 6}, {2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(fold_increase({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(fold_increase({5}, {0}, 100.0), 100.0);  // capped
}

TEST(RollingAverage, TrailingWindow) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  const auto rolled = rolling_average(values, 2);
  ASSERT_EQ(rolled.size(), 5u);
  EXPECT_DOUBLE_EQ(rolled[0], 1.0);
  EXPECT_DOUBLE_EQ(rolled[1], 1.5);
  EXPECT_DOUBLE_EQ(rolled[4], 4.5);
}

TEST(RollingAverage, WindowLargerThanInput) {
  const auto rolled = rolling_average({2, 4}, 10);
  EXPECT_DOUBLE_EQ(rolled[0], 2.0);
  EXPECT_DOUBLE_EQ(rolled[1], 3.0);
}

TEST(RollingAverage, DegenerateInputs) {
  EXPECT_TRUE(rolling_average({}, 5).empty());
  const auto zero_window = rolling_average({1, 2}, 0);
  EXPECT_DOUBLE_EQ(zero_window[0], 0.0);
}

TEST(RollingAverage, FlatSeriesUnchanged) {
  const std::vector<double> flat(100, 7.0);
  for (double v : rolling_average(flat, 16)) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(CountSpikes, DetectsBursts) {
  std::vector<double> hourly(168, 2.0);
  hourly[10] = 50.0;
  hourly[50] = 40.0;
  EXPECT_EQ(count_spikes(hourly, 4.0), 2u);
}

TEST(CountSpikes, NoSpikesInFlatSeries) {
  const std::vector<double> flat(100, 3.0);
  EXPECT_EQ(count_spikes(flat), 0u);
}

TEST(CountSpikes, ZeroMedianUsesAbsoluteThreshold) {
  std::vector<double> sparse(100, 0.0);
  sparse[5] = 10.0;
  EXPECT_EQ(count_spikes(sparse, 4.0), 1u);
}

TEST(CountSpikes, EmptyInput) { EXPECT_EQ(count_spikes({}), 0u); }

}  // namespace
}  // namespace cw::stats
