#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cw::stats {
namespace {

TEST(GammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(1.0, 0.0), 1.0);
  EXPECT_TRUE(std::isnan(gamma_p(0.0, 1.0)));
  EXPECT_TRUE(std::isnan(gamma_p(1.0, -1.0)));
}

TEST(GammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
}

TEST(GammaP, ComplementarityAcrossRegimes) {
  // Both the series (x < a+1) and continued-fraction (x > a+1) paths.
  for (double a : {0.5, 2.0, 7.5, 30.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10) << a << " " << x;
    }
  }
}

struct ChiSfCase {
  double x;
  double df;
  double expected;
};

class ChiSquaredSf : public ::testing::TestWithParam<ChiSfCase> {};

TEST_P(ChiSquaredSf, MatchesReferenceTables) {
  EXPECT_NEAR(chi_squared_sf(GetParam().x, GetParam().df), GetParam().expected, 5e-4);
}

// Reference values from standard chi-squared tables / scipy.stats.chi2.sf.
INSTANTIATE_TEST_SUITE_P(Reference, ChiSquaredSf,
                         ::testing::Values(ChiSfCase{3.841, 1, 0.05}, ChiSfCase{6.635, 1, 0.01},
                                           ChiSfCase{5.991, 2, 0.05}, ChiSfCase{9.210, 2, 0.01},
                                           ChiSfCase{7.815, 3, 0.05},
                                           ChiSfCase{18.307, 10, 0.05},
                                           ChiSfCase{31.410, 20, 0.05},
                                           ChiSfCase{1.0, 1, 0.3173},
                                           ChiSfCase{0.0, 5, 1.0}));

TEST(ChiSquaredSf, InvalidDf) { EXPECT_TRUE(std::isnan(chi_squared_sf(1.0, 0.0))); }

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(normal_cdf(-1.959964), 0.025, 1e-5);
  EXPECT_NEAR(normal_cdf(3.0), 0.99865, 1e-4);
  EXPECT_NEAR(normal_cdf(-6.0), 0.0, 1e-8);
}

TEST(KolmogorovSf, KnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_sf(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_sf(-1.0), 1.0);
  // Q_KS(1.2238) ~= 0.10, Q_KS(1.3581) ~= 0.05 (standard KS quantiles).
  EXPECT_NEAR(kolmogorov_sf(1.2238), 0.10, 2e-3);
  EXPECT_NEAR(kolmogorov_sf(1.3581), 0.05, 2e-3);
  EXPECT_LT(kolmogorov_sf(3.0), 1e-6);
}

TEST(KolmogorovSf, MonotoneDecreasing) {
  double previous = 1.0;
  for (double lambda = 0.2; lambda < 3.0; lambda += 0.1) {
    const double sf = kolmogorov_sf(lambda);
    EXPECT_LE(sf, previous + 1e-12);
    previous = sf;
  }
}

}  // namespace
}  // namespace cw::stats
