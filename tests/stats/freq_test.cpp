#include "stats/freq.h"

#include <gtest/gtest.h>

namespace cw::stats {
namespace {

TEST(FrequencyTable, CountsAndTotal) {
  FrequencyTable table;
  table.add("a");
  table.add("a");
  table.add("b", 3);
  EXPECT_EQ(table.count("a"), 2u);
  EXPECT_EQ(table.count("b"), 3u);
  EXPECT_EQ(table.count("missing"), 0u);
  EXPECT_EQ(table.total(), 5u);
  EXPECT_EQ(table.distinct(), 2u);
  EXPECT_FALSE(table.empty());
}

TEST(FrequencyTable, TopKOrdering) {
  FrequencyTable table;
  table.add("low", 1);
  table.add("high", 10);
  table.add("mid", 5);
  const auto top = table.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], "high");
  EXPECT_EQ(top[1], "mid");
}

TEST(FrequencyTable, TopKTiesBreakLexicographically) {
  FrequencyTable table;
  table.add("zeta", 5);
  table.add("alpha", 5);
  table.add("mid", 5);
  const auto top = table.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], "alpha");
  EXPECT_EQ(top[1], "mid");
  EXPECT_EQ(top[2], "zeta");
}

TEST(FrequencyTable, TopKLargerThanDistinct) {
  FrequencyTable table;
  table.add("only");
  EXPECT_EQ(table.top_k(3).size(), 1u);
}

TEST(FrequencyTable, EmptyTable) {
  FrequencyTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.top_k(3).empty());
  EXPECT_TRUE(table.sorted().empty());
}

TEST(TopKUnion, UnionsAndSorts) {
  FrequencyTable a;
  a.add("x", 5);
  a.add("y", 3);
  FrequencyTable b;
  b.add("y", 9);
  b.add("z", 1);
  const auto categories = top_k_union({&a, &b}, 2);
  ASSERT_EQ(categories.size(), 3u);
  EXPECT_EQ(categories[0], "x");
  EXPECT_EQ(categories[1], "y");
  EXPECT_EQ(categories[2], "z");
}

TEST(TopKUnion, IgnoresNulls) {
  FrequencyTable a;
  a.add("x");
  const auto categories = top_k_union({&a, nullptr}, 3);
  EXPECT_EQ(categories.size(), 1u);
}

TEST(TopKUnion, RespectsK) {
  FrequencyTable a;
  for (int i = 0; i < 10; ++i) a.add("v" + std::to_string(i), 10 - i);
  EXPECT_EQ(top_k_union({&a}, 3).size(), 3u);
}

}  // namespace
}  // namespace cw::stats
