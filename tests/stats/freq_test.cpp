#include "stats/freq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace cw::stats {
namespace {

TEST(FrequencyTable, CountsAndTotal) {
  FrequencyTable table;
  table.add("a");
  table.add("a");
  table.add("b", 3);
  EXPECT_EQ(table.count("a"), 2u);
  EXPECT_EQ(table.count("b"), 3u);
  EXPECT_EQ(table.count("missing"), 0u);
  EXPECT_EQ(table.total(), 5u);
  EXPECT_EQ(table.distinct(), 2u);
  EXPECT_FALSE(table.empty());
}

TEST(FrequencyTable, TopKOrdering) {
  FrequencyTable table;
  table.add("low", 1);
  table.add("high", 10);
  table.add("mid", 5);
  const auto top = table.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], "high");
  EXPECT_EQ(top[1], "mid");
}

TEST(FrequencyTable, TopKTiesBreakLexicographically) {
  FrequencyTable table;
  table.add("zeta", 5);
  table.add("alpha", 5);
  table.add("mid", 5);
  const auto top = table.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], "alpha");
  EXPECT_EQ(top[1], "mid");
  EXPECT_EQ(top[2], "zeta");
}

TEST(FrequencyTable, TopKLargerThanDistinct) {
  FrequencyTable table;
  table.add("only");
  EXPECT_EQ(table.top_k(3).size(), 1u);
}

TEST(FrequencyTable, EmptyTable) {
  FrequencyTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.top_k(3).empty());
  EXPECT_TRUE(table.sorted().empty());
}

TEST(FrequencyTable, TopKTieAtKBoundaryIsDeterministic) {
  // Three values tie exactly at the k-th slot; the winner must be the
  // lexicographically smallest, regardless of insertion order.
  FrequencyTable forward;
  forward.add("top", 9);
  forward.add("alpha", 5);
  forward.add("mid", 5);
  forward.add("zeta", 5);
  FrequencyTable reversed;
  reversed.add("zeta", 5);
  reversed.add("mid", 5);
  reversed.add("alpha", 5);
  reversed.add("top", 9);
  for (const FrequencyTable* table : {&forward, &reversed}) {
    const auto top = table->top_k(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], "top");
    EXPECT_EQ(top[1], "alpha");
  }
}

TEST(FrequencyTable, MergeSumsCountsAndTotals) {
  FrequencyTable a;
  a.add("x", 3);
  a.add("y", 1);
  FrequencyTable b;
  b.add("y", 2);
  b.add("z", 5);
  a.merge(b);
  EXPECT_EQ(a.count("x"), 3u);
  EXPECT_EQ(a.count("y"), 3u);
  EXPECT_EQ(a.count("z"), 5u);
  EXPECT_EQ(a.total(), 11u);
  EXPECT_EQ(a.distinct(), 3u);

  FrequencyTable empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 11u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 11u);
  EXPECT_EQ(empty.count("y"), 3u);
}

TEST(FrequencyTable, ChunkedMergeMatchesSequentialBuild) {
  // A table assembled by merging contiguous-chunk partials must be
  // indistinguishable from the sequential build — the cache's sharded
  // builds rely on this.
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("v" + std::to_string(i % 37));
  FrequencyTable sequential;
  for (const std::string& v : values) sequential.add(v);

  for (const std::size_t chunk : {1ul, 7ul, 64ul, 999ul, 5000ul}) {
    FrequencyTable merged;
    for (std::size_t begin = 0; begin < values.size(); begin += chunk) {
      FrequencyTable partial;
      for (std::size_t i = begin; i < std::min(values.size(), begin + chunk); ++i) {
        partial.add(values[i]);
      }
      merged.merge(partial);
    }
    EXPECT_EQ(merged.total(), sequential.total());
    EXPECT_EQ(merged.sorted(), sequential.sorted());
    EXPECT_EQ(merged.top_k(3), sequential.top_k(3));
  }
}

// --- Dense (from_codes) path -----------------------------------------------

// A synthetic shifted-code column with missing rows (shifted code 0) plus
// the equivalent text column for the v1 add-loop.
struct EncodedColumn {
  std::shared_ptr<const cw::util::Dictionary> dict;
  std::vector<std::uint32_t> shifted;      // code+1, 0 = missing
  std::vector<std::string> texts;          // one entry per non-missing row
};

EncodedColumn make_column(std::size_t rows, std::size_t distinct, std::size_t missing_every) {
  std::vector<std::string> values;
  for (std::size_t i = 0; i < distinct; ++i) values.push_back("val-" + std::to_string(i));
  EncodedColumn column;
  column.dict = cw::util::Dictionary::sorted(values);
  for (std::size_t r = 0; r < rows; ++r) {
    if (missing_every != 0 && r % missing_every == 0) {
      column.shifted.push_back(0);
      continue;
    }
    const std::string& text = values[(r * 13) % distinct];
    column.shifted.push_back(*column.dict->find(text) + 1);
    column.texts.push_back(text);
  }
  return column;
}

void expect_bit_identical(const FrequencyTable& a, const FrequencyTable& b) {
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.distinct(), b.distinct());
  EXPECT_EQ(a.sorted(), b.sorted());
  EXPECT_EQ(a.top_k(3), b.top_k(3));
}

TEST(FrequencyTableDense, FromCodesMatchesAddLoop) {
  const auto column = make_column(997, 23, 5);
  const auto dense = FrequencyTable::from_codes(column.shifted, column.dict);
  EXPECT_TRUE(dense.dense());
  FrequencyTable sparse;
  for (const std::string& text : column.texts) sparse.add(text);
  expect_bit_identical(dense, sparse);
  EXPECT_EQ(dense.count("val-0"), sparse.count("val-0"));
  EXPECT_EQ(dense.count("never-seen"), 0u);
}

TEST(FrequencyTableDense, FromCodesOverRecordsMatchesAddLoop) {
  const auto column = make_column(500, 11, 0);
  // Every third row, through both PostingView sources.
  std::vector<std::uint32_t> picked;
  for (std::uint32_t r = 0; r < 500; r += 3) picked.push_back(r);
  cw::util::PostingList packed;
  for (const std::uint32_t r : picked) packed.append(r);

  FrequencyTable sparse;
  for (const std::uint32_t r : picked) sparse.add(column.dict->at(column.shifted[r] - 1));

  const auto via_vector =
      FrequencyTable::from_codes(column.shifted, cw::util::PostingView(picked), column.dict);
  const auto via_packed =
      FrequencyTable::from_codes(column.shifted, cw::util::PostingView(packed), column.dict);
  expect_bit_identical(via_vector, sparse);
  expect_bit_identical(via_packed, sparse);
}

TEST(FrequencyTableDense, MergedChunkPartialsMatchSequential) {
  // Satellite contract: from_codes chunk partials merged code-wise must be
  // bit-identical to the sequential v1 add-loop over the same records.
  const auto column = make_column(2000, 31, 7);
  FrequencyTable sequential;
  for (const std::string& text : column.texts) sequential.add(text);

  for (const std::size_t chunk : {64ul, 333ul, 1999ul, 4096ul}) {
    FrequencyTable merged;
    for (std::size_t begin = 0; begin < column.shifted.size(); begin += chunk) {
      const std::size_t end = std::min(column.shifted.size(), begin + chunk);
      const auto partial = FrequencyTable::from_codes(
          std::span<const std::uint32_t>(column.shifted).subspan(begin, end - begin),
          column.dict);
      merged.merge(partial);
    }
    EXPECT_TRUE(merged.dense());
    expect_bit_identical(merged, sequential);
  }
}

TEST(FrequencyTableDense, MergeAcrossGrownSharedDictionary) {
  // Stream mode: the shared dictionary grows between epoch builds; earlier
  // partials have shorter count vectors but codes stay aligned.
  auto shared = std::make_shared<cw::util::Dictionary>();
  std::vector<std::uint32_t> epoch1 = {shared->encode("b") + 1, shared->encode("a") + 1,
                                       shared->encode("b") + 1, 0};
  std::shared_ptr<const cw::util::Dictionary> view = shared;
  const auto table1 = FrequencyTable::from_codes(epoch1, view);

  std::vector<std::uint32_t> epoch2 = {shared->encode("c") + 1, shared->encode("a") + 1, 0,
                                       shared->encode("c") + 1};
  const auto table2 = FrequencyTable::from_codes(epoch2, view);

  FrequencyTable merged;
  merged.merge(table1);
  merged.merge(table2);
  EXPECT_TRUE(merged.dense());

  FrequencyTable reference;
  reference.add("b", 2);
  reference.add("a", 2);
  reference.add("c", 2);
  expect_bit_identical(merged, reference);

  // Reverse order (long vector first) must also work.
  FrequencyTable reversed;
  reversed.merge(table2);
  reversed.merge(table1);
  expect_bit_identical(reversed, reference);
}

TEST(FrequencyTableDense, MismatchedDictionariesFallBackToText) {
  const auto col_a = make_column(100, 7, 0);
  const auto col_b = make_column(100, 9, 0);
  auto dense_a = FrequencyTable::from_codes(col_a.shifted, col_a.dict);
  const auto dense_b = FrequencyTable::from_codes(col_b.shifted, col_b.dict);
  FrequencyTable reference;
  for (const std::string& text : col_a.texts) reference.add(text);
  for (const std::string& text : col_b.texts) reference.add(text);
  dense_a.merge(dense_b);
  expect_bit_identical(dense_a, reference);
}

TEST(FrequencyTableDense, AddAndSparseMergeFlattenDenseTables) {
  const auto column = make_column(50, 5, 0);
  auto dense = FrequencyTable::from_codes(column.shifted, column.dict);
  FrequencyTable reference;
  for (const std::string& text : column.texts) reference.add(text);

  auto via_add = dense;
  auto add_reference = reference;
  via_add.add("extra", 2);
  add_reference.add("extra", 2);
  EXPECT_FALSE(via_add.dense());
  expect_bit_identical(via_add, add_reference);

  FrequencyTable sparse_other;
  sparse_other.add("other", 4);
  dense.merge(sparse_other);
  reference.add("other", 4);
  EXPECT_FALSE(dense.dense());
  expect_bit_identical(dense, reference);
}

TEST(FrequencyTableDense, AllMissingColumnIsEmpty) {
  const std::vector<std::uint32_t> shifted = {0, 0, 0};
  const auto dense =
      FrequencyTable::from_codes(shifted, cw::util::Dictionary::sorted({"a", "b"}));
  EXPECT_TRUE(dense.empty());
  EXPECT_EQ(dense.total(), 0u);
  EXPECT_EQ(dense.distinct(), 0u);
  EXPECT_TRUE(dense.sorted().empty());
  EXPECT_TRUE(dense.top_k(3).empty());
}

TEST(FrequencyTableDense, StaleDictionaryCodeThrowsInEveryBuildMode) {
  // Satellite contract: a shifted code beyond the dictionary's range (a
  // stale or mismatched dictionary) must throw std::out_of_range in release
  // builds too — the old assert() vanished under NDEBUG and the gather
  // kernel scribbled past shifted_counts_.
  const auto dict = cw::util::Dictionary::sorted({"a", "b", "c"});
  const std::vector<std::uint32_t> good = {1, 2, 3, 0};
  const std::vector<std::uint32_t> stale = {1, 2, 7, 0};  // 7 > distinct+1

  // Whole-column path.
  EXPECT_NO_THROW(FrequencyTable::from_codes(good, dict));
  EXPECT_THROW(FrequencyTable::from_codes(stale, dict), std::out_of_range);

  // Gather (record-subset) path, through both PostingView sources.
  const std::vector<std::uint32_t> rows = {0, 1, 2};
  EXPECT_NO_THROW(FrequencyTable::from_codes(good, cw::util::PostingView(rows), dict));
  EXPECT_THROW(FrequencyTable::from_codes(stale, cw::util::PostingView(rows), dict),
               std::out_of_range);
  cw::util::PostingList packed;
  for (const std::uint32_t r : rows) packed.append(r);
  EXPECT_THROW(FrequencyTable::from_codes(stale, cw::util::PostingView(packed), dict),
               std::out_of_range);

  // A gather that never touches the stale row stays fine: the check guards
  // the codes actually read, not the whole column.
  const std::vector<std::uint32_t> safe_rows = {0, 1, 3};
  EXPECT_NO_THROW(FrequencyTable::from_codes(stale, cw::util::PostingView(safe_rows), dict));
}

TEST(TopKUnion, UnionsAndSorts) {
  FrequencyTable a;
  a.add("x", 5);
  a.add("y", 3);
  FrequencyTable b;
  b.add("y", 9);
  b.add("z", 1);
  const auto categories = top_k_union({&a, &b}, 2);
  ASSERT_EQ(categories.size(), 3u);
  EXPECT_EQ(categories[0], "x");
  EXPECT_EQ(categories[1], "y");
  EXPECT_EQ(categories[2], "z");
}

TEST(TopKUnion, IgnoresNulls) {
  FrequencyTable a;
  a.add("x");
  const auto categories = top_k_union({&a, nullptr}, 3);
  EXPECT_EQ(categories.size(), 1u);
}

TEST(TopKUnion, RespectsK) {
  FrequencyTable a;
  for (int i = 0; i < 10; ++i) a.add("v" + std::to_string(i), 10 - i);
  EXPECT_EQ(top_k_union({&a}, 3).size(), 3u);
}

}  // namespace
}  // namespace cw::stats
