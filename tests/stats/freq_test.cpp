#include "stats/freq.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cw::stats {
namespace {

TEST(FrequencyTable, CountsAndTotal) {
  FrequencyTable table;
  table.add("a");
  table.add("a");
  table.add("b", 3);
  EXPECT_EQ(table.count("a"), 2u);
  EXPECT_EQ(table.count("b"), 3u);
  EXPECT_EQ(table.count("missing"), 0u);
  EXPECT_EQ(table.total(), 5u);
  EXPECT_EQ(table.distinct(), 2u);
  EXPECT_FALSE(table.empty());
}

TEST(FrequencyTable, TopKOrdering) {
  FrequencyTable table;
  table.add("low", 1);
  table.add("high", 10);
  table.add("mid", 5);
  const auto top = table.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], "high");
  EXPECT_EQ(top[1], "mid");
}

TEST(FrequencyTable, TopKTiesBreakLexicographically) {
  FrequencyTable table;
  table.add("zeta", 5);
  table.add("alpha", 5);
  table.add("mid", 5);
  const auto top = table.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], "alpha");
  EXPECT_EQ(top[1], "mid");
  EXPECT_EQ(top[2], "zeta");
}

TEST(FrequencyTable, TopKLargerThanDistinct) {
  FrequencyTable table;
  table.add("only");
  EXPECT_EQ(table.top_k(3).size(), 1u);
}

TEST(FrequencyTable, EmptyTable) {
  FrequencyTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.top_k(3).empty());
  EXPECT_TRUE(table.sorted().empty());
}

TEST(FrequencyTable, TopKTieAtKBoundaryIsDeterministic) {
  // Three values tie exactly at the k-th slot; the winner must be the
  // lexicographically smallest, regardless of insertion order.
  FrequencyTable forward;
  forward.add("top", 9);
  forward.add("alpha", 5);
  forward.add("mid", 5);
  forward.add("zeta", 5);
  FrequencyTable reversed;
  reversed.add("zeta", 5);
  reversed.add("mid", 5);
  reversed.add("alpha", 5);
  reversed.add("top", 9);
  for (const FrequencyTable* table : {&forward, &reversed}) {
    const auto top = table->top_k(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], "top");
    EXPECT_EQ(top[1], "alpha");
  }
}

TEST(FrequencyTable, MergeSumsCountsAndTotals) {
  FrequencyTable a;
  a.add("x", 3);
  a.add("y", 1);
  FrequencyTable b;
  b.add("y", 2);
  b.add("z", 5);
  a.merge(b);
  EXPECT_EQ(a.count("x"), 3u);
  EXPECT_EQ(a.count("y"), 3u);
  EXPECT_EQ(a.count("z"), 5u);
  EXPECT_EQ(a.total(), 11u);
  EXPECT_EQ(a.distinct(), 3u);

  FrequencyTable empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 11u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 11u);
  EXPECT_EQ(empty.count("y"), 3u);
}

TEST(FrequencyTable, ChunkedMergeMatchesSequentialBuild) {
  // A table assembled by merging contiguous-chunk partials must be
  // indistinguishable from the sequential build — the cache's sharded
  // builds rely on this.
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back("v" + std::to_string(i % 37));
  FrequencyTable sequential;
  for (const std::string& v : values) sequential.add(v);

  for (const std::size_t chunk : {1ul, 7ul, 64ul, 999ul, 5000ul}) {
    FrequencyTable merged;
    for (std::size_t begin = 0; begin < values.size(); begin += chunk) {
      FrequencyTable partial;
      for (std::size_t i = begin; i < std::min(values.size(), begin + chunk); ++i) {
        partial.add(values[i]);
      }
      merged.merge(partial);
    }
    EXPECT_EQ(merged.total(), sequential.total());
    EXPECT_EQ(merged.sorted(), sequential.sorted());
    EXPECT_EQ(merged.top_k(3), sequential.top_k(3));
  }
}

TEST(TopKUnion, UnionsAndSorts) {
  FrequencyTable a;
  a.add("x", 5);
  a.add("y", 3);
  FrequencyTable b;
  b.add("y", 9);
  b.add("z", 1);
  const auto categories = top_k_union({&a, &b}, 2);
  ASSERT_EQ(categories.size(), 3u);
  EXPECT_EQ(categories[0], "x");
  EXPECT_EQ(categories[1], "y");
  EXPECT_EQ(categories[2], "z");
}

TEST(TopKUnion, IgnoresNulls) {
  FrequencyTable a;
  a.add("x");
  const auto categories = top_k_union({&a, nullptr}, 3);
  EXPECT_EQ(categories.size(), 1u);
}

TEST(TopKUnion, RespectsK) {
  FrequencyTable a;
  for (int i = 0; i < 10; ++i) a.add("v" + std::to_string(i), 10 - i);
  EXPECT_EQ(top_k_union({&a}, 3).size(), 3u);
}

}  // namespace
}  // namespace cw::stats
