#include "stats/ks.h"
#include "stats/mann_whitney.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cw::stats {
namespace {

TEST(MannWhitney, EmptySamplesInvalid) {
  EXPECT_FALSE(mann_whitney_greater({}, {1.0}).valid);
  EXPECT_FALSE(mann_whitney_greater({1.0}, {}).valid);
}

TEST(MannWhitney, ClearlyGreaterSampleSignificant) {
  std::vector<double> high;
  std::vector<double> low;
  for (int i = 0; i < 50; ++i) {
    high.push_back(10.0 + i * 0.1);
    low.push_back(1.0 + i * 0.1);
  }
  const MannWhitneyResult result = mann_whitney_greater(high, low);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.z, 4.0);
}

TEST(MannWhitney, ReversedDirectionNotSignificant) {
  std::vector<double> high;
  std::vector<double> low;
  for (int i = 0; i < 50; ++i) {
    high.push_back(10.0 + i * 0.1);
    low.push_back(1.0 + i * 0.1);
  }
  // Testing whether `low` > `high` must fail decisively.
  const MannWhitneyResult result = mann_whitney_greater(low, high);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  const MannWhitneyResult result = mann_whitney_greater(sample, sample);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.p_value, 0.4);
}

TEST(MannWhitney, AllValuesEqualHandledViaTieCorrection) {
  const std::vector<double> constant(20, 5.0);
  const MannWhitneyResult result = mann_whitney_greater(constant, constant);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(MannWhitney, UStatisticRange) {
  const std::vector<double> a = {5, 6, 7};
  const std::vector<double> b = {1, 2, 3};
  const MannWhitneyResult result = mann_whitney_greater(a, b);
  ASSERT_TRUE(result.valid);
  // Every a beats every b: U = n1*n2 = 9.
  EXPECT_DOUBLE_EQ(result.u_statistic, 9.0);
}

TEST(MannWhitney, ShiftDetectionUnderNoise) {
  util::Rng rng(99);
  std::vector<double> shifted;
  std::vector<double> baseline;
  for (int i = 0; i < 168; ++i) {  // one week of hourly buckets
    baseline.push_back(rng.exponential(1.0));
    shifted.push_back(rng.exponential(1.0) + 0.8);
  }
  EXPECT_LT(mann_whitney_greater(shifted, baseline).p_value, 0.01);
}

// Under the null, the one-sided p-value should be roughly uniform: check it
// is not systematically tiny across seeds.
class MwuNull : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwuNull, NoFalseCertainty) {
  util::Rng rng(GetParam());
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_GT(mann_whitney_greater(a, b).p_value, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwuNull, ::testing::Values(11, 22, 33, 44, 55));

TEST(KolmogorovSmirnov, EmptyInvalid) {
  EXPECT_FALSE(ks_two_sample({}, {1.0}).valid);
  EXPECT_FALSE(ks_two_sample({1.0}, {}).valid);
}

TEST(KolmogorovSmirnov, IdenticalSamplesDStatZero) {
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  const KsResult result = ks_two_sample(sample, sample);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KolmogorovSmirnov, DisjointSupportsDStatOne) {
  const std::vector<double> low = {1, 2, 3};
  const std::vector<double> high = {10, 11, 12};
  const KsResult result = ks_two_sample(low, high);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 1.0);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(KolmogorovSmirnov, DetectsSpikeHeavyDistribution) {
  // The leak experiment's signature: same median, but one series carries
  // spikes. KS sees the tail difference.
  util::Rng rng(7);
  std::vector<double> steady;
  std::vector<double> spiky;
  for (int i = 0; i < 168; ++i) {
    steady.push_back(2.0 + rng.uniform());
    spiky.push_back(i % 12 == 0 ? 30.0 + rng.uniform() : 1.6 + rng.uniform());
  }
  const KsResult result = ks_two_sample(spiky, steady);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(KolmogorovSmirnov, SymmetricInArguments) {
  const std::vector<double> a = {1, 3, 5, 7};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  const KsResult ab = ks_two_sample(a, b);
  const KsResult ba = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(ab.d_statistic, ba.d_statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

}  // namespace
}  // namespace cw::stats
