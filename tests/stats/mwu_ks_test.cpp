#include "stats/ks.h"
#include "stats/mann_whitney.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cw::stats {
namespace {

TEST(MannWhitney, EmptySamplesInvalid) {
  EXPECT_FALSE(mann_whitney_greater({}, {1.0}).valid);
  EXPECT_FALSE(mann_whitney_greater({1.0}, {}).valid);
}

TEST(MannWhitney, ClearlyGreaterSampleSignificant) {
  std::vector<double> high;
  std::vector<double> low;
  for (int i = 0; i < 50; ++i) {
    high.push_back(10.0 + i * 0.1);
    low.push_back(1.0 + i * 0.1);
  }
  const MannWhitneyResult result = mann_whitney_greater(high, low);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.z, 4.0);
}

TEST(MannWhitney, ReversedDirectionNotSignificant) {
  std::vector<double> high;
  std::vector<double> low;
  for (int i = 0; i < 50; ++i) {
    high.push_back(10.0 + i * 0.1);
    low.push_back(1.0 + i * 0.1);
  }
  // Testing whether `low` > `high` must fail decisively.
  const MannWhitneyResult result = mann_whitney_greater(low, high);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  const MannWhitneyResult result = mann_whitney_greater(sample, sample);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.p_value, 0.4);
}

TEST(MannWhitney, AllValuesEqualHandledViaTieCorrection) {
  const std::vector<double> constant(20, 5.0);
  const MannWhitneyResult result = mann_whitney_greater(constant, constant);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(MannWhitney, UStatisticRange) {
  const std::vector<double> a = {5, 6, 7};
  const std::vector<double> b = {1, 2, 3};
  const MannWhitneyResult result = mann_whitney_greater(a, b);
  ASSERT_TRUE(result.valid);
  // Every a beats every b: U = n1*n2 = 9.
  EXPECT_DOUBLE_EQ(result.u_statistic, 9.0);
}

TEST(MannWhitney, ShiftDetectionUnderNoise) {
  util::Rng rng(99);
  std::vector<double> shifted;
  std::vector<double> baseline;
  for (int i = 0; i < 168; ++i) {  // one week of hourly buckets
    baseline.push_back(rng.exponential(1.0));
    shifted.push_back(rng.exponential(1.0) + 0.8);
  }
  EXPECT_LT(mann_whitney_greater(shifted, baseline).p_value, 0.01);
}

// Under the null, the one-sided p-value should be roughly uniform: check it
// is not systematically tiny across seeds.
class MwuNull : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwuNull, NoFalseCertainty) {
  util::Rng rng(GetParam());
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_GT(mann_whitney_greater(a, b).p_value, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwuNull, ::testing::Values(11, 22, 33, 44, 55));

TEST(KolmogorovSmirnov, EmptyInvalid) {
  EXPECT_FALSE(ks_two_sample({}, {1.0}).valid);
  EXPECT_FALSE(ks_two_sample({1.0}, {}).valid);
}

TEST(KolmogorovSmirnov, IdenticalSamplesDStatZero) {
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  const KsResult result = ks_two_sample(sample, sample);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KolmogorovSmirnov, DisjointSupportsDStatOne) {
  const std::vector<double> low = {1, 2, 3};
  const std::vector<double> high = {10, 11, 12};
  const KsResult result = ks_two_sample(low, high);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 1.0);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(KolmogorovSmirnov, DetectsSpikeHeavyDistribution) {
  // The leak experiment's signature: same median, but one series carries
  // spikes. KS sees the tail difference.
  util::Rng rng(7);
  std::vector<double> steady;
  std::vector<double> spiky;
  for (int i = 0; i < 168; ++i) {
    steady.push_back(2.0 + rng.uniform());
    spiky.push_back(i % 12 == 0 ? 30.0 + rng.uniform() : 1.6 + rng.uniform());
  }
  const KsResult result = ks_two_sample(spiky, steady);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.p_value, 0.01);
}

// ---------------------------------------------------------------------------
// External reference values.
//
// The p-values below were computed outside this codebase, in IEEE-754 double
// precision, from the same published formulas the implementations document:
// the normal approximation with midrank tie correction and -0.5 continuity
// correction for the one-sided Mann-Whitney U (scipy.stats.mannwhitneyu
// method="asymptotic", alternative="greater"), and the Stephens-adjusted
// asymptotic Kolmogorov distribution for the two-sample KS (Numerical
// Recipes / legacy scipy ks_2samp mode="asymp":
// lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D). They pin the
// implementations to the literature at 1e-9, far below any tolerance the
// paper-claims verdicts rely on.
// ---------------------------------------------------------------------------

constexpr double kRefTol = 1e-9;

TEST(MannWhitney, ReferenceSmallSampleWithTies) {
  const std::vector<double> g = {3.0, 1.0, 4.0, 1.0, 5.0};
  const std::vector<double> l = {2.0, 6.0, 2.0};
  const MannWhitneyResult result = mann_whitney_greater(g, l);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.u_statistic, 6.0);
  EXPECT_NEAR(result.z, -0.6035127523726592, kRefTol);
  EXPECT_NEAR(result.p_value, 0.7269161826866257, kRefTol);
}

TEST(MannWhitney, ReferenceSmallSampleFullShift) {
  const std::vector<double> g = {10.0, 12.0, 14.0};
  const std::vector<double> l = {1.0, 2.0, 3.0};
  const MannWhitneyResult result = mann_whitney_greater(g, l);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.u_statistic, 9.0);
  EXPECT_NEAR(result.z, 1.7457431218879391, kRefTol);
  EXPECT_NEAR(result.p_value, 0.04042779918502615, kRefTol);
}

TEST(MannWhitney, ReferenceTieHeavy) {
  // Every value is tied with at least one other: the tie-corrected variance
  // differs markedly from the uncorrected one, so this pins the correction.
  const std::vector<double> g = {1, 2, 2, 3, 3, 3, 4, 4, 4, 4};
  const std::vector<double> l = {1, 1, 2, 2, 3, 3, 4, 4};
  const MannWhitneyResult result = mann_whitney_greater(g, l);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.u_statistic, 50.0);
  EXPECT_NEAR(result.z, 0.8758567234428243, kRefTol);
  EXPECT_NEAR(result.p_value, 0.19055396432502536, kRefTol);
}

TEST(MannWhitney, ReferenceModerateSample) {
  // Deterministic integer sequences (residues of prime multiples) with
  // incidental ties, n1=40 vs n2=35.
  std::vector<double> g;
  std::vector<double> l;
  for (int i = 0; i < 40; ++i) g.push_back(static_cast<double>((i * 7919) % 101));
  for (int i = 0; i < 35; ++i) l.push_back(static_cast<double>((i * 104729) % 97));
  const MannWhitneyResult result = mann_whitney_greater(g, l);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.u_statistic, 777.5);
  EXPECT_NEAR(result.z, 0.8178183899697743, kRefTol);
  EXPECT_NEAR(result.p_value, 0.2067304478118117, kRefTol);
}

TEST(MannWhitney, ReferenceHourlyWeekShape) {
  // The shape the paper comparisons actually use: 168 hourly buckets, one
  // series with a small additive effect on a sparse subset of hours.
  std::vector<double> g;
  std::vector<double> l;
  for (std::uint64_t i = 0; i < 168; ++i) {
    g.push_back(static_cast<double>((i * 2654435761ULL) % 1000) / 10.0 +
                (i % 24 == 0 ? 5.0 : 0.0));
    l.push_back(static_cast<double>((i * 2246822519ULL) % 1000) / 10.0);
  }
  const MannWhitneyResult result = mann_whitney_greater(g, l);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.u_statistic, 14470.0);
  EXPECT_NEAR(result.z, 0.40155364315404213, kRefTol);
  EXPECT_NEAR(result.p_value, 0.3440062759872179, kRefTol);
}

TEST(KolmogorovSmirnov, ReferenceSmallSample) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.5, 2.5, 3.5, 4.5};
  const KsResult result = ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 0.5);
  EXPECT_NEAR(result.p_value, 0.615965784519994, kRefTol);
}

TEST(KolmogorovSmirnov, ReferenceTieHeavy) {
  const std::vector<double> a = {1, 1, 2, 2, 3, 3};
  const std::vector<double> b = {1, 2, 2, 3, 3, 3};
  const KsResult result = ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.d_statistic, 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(result.p_value, 0.9999565148992586, kRefTol);
}

TEST(KolmogorovSmirnov, ReferenceDisjointSmallSample) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  const KsResult result = ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.d_statistic, 1.0);
  EXPECT_NEAR(result.p_value, 0.03262165165202117, kRefTol);
}

TEST(KolmogorovSmirnov, ReferenceModerateSample) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) a.push_back(static_cast<double>((i * 7919) % 101));
  for (int i = 0; i < 35; ++i) b.push_back(static_cast<double>((i * 104729) % 97));
  const KsResult result = ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.d_statistic, 0.11071428571428565, 1e-15);
  EXPECT_NEAR(result.p_value, 0.9673872646902757, kRefTol);
}

TEST(KolmogorovSmirnov, ReferenceHourlyWeekShape) {
  std::vector<double> a;
  std::vector<double> b;
  for (std::uint64_t i = 0; i < 168; ++i) {
    a.push_back(static_cast<double>((i * 2654435761ULL) % 1000) / 10.0 +
                (i % 12 == 0 ? 25.0 : 0.0));
    b.push_back(static_cast<double>((i * 2246822519ULL) % 1000) / 10.0);
  }
  const KsResult result = ks_two_sample(a, b);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.d_statistic, 0.04761904761904767, 1e-15);
  EXPECT_NEAR(result.p_value, 0.9895438044776123, kRefTol);
}

TEST(KolmogorovSmirnov, SymmetricInArguments) {
  const std::vector<double> a = {1, 3, 5, 7};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  const KsResult ab = ks_two_sample(a, b);
  const KsResult ba = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(ab.d_statistic, ba.d_statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

}  // namespace
}  // namespace cw::stats
