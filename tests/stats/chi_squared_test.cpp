#include "stats/chi_squared.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace cw::stats {
namespace {

TEST(ClassifyEffect, DfOneThresholds) {
  EXPECT_EQ(classify_effect(0.05, 1), EffectMagnitude::kNone);
  EXPECT_EQ(classify_effect(0.15, 1), EffectMagnitude::kSmall);
  EXPECT_EQ(classify_effect(0.35, 1), EffectMagnitude::kMedium);
  EXPECT_EQ(classify_effect(0.60, 1), EffectMagnitude::kLarge);
}

TEST(ClassifyEffect, IdenticalPhiDifferentMagnitudeAcrossDf) {
  // The paper's Section 3.3 point: phi = 0.3 is medium at df* = 1 but
  // large at df* = 4 (thresholds scale with 1/sqrt(df*)).
  EXPECT_EQ(classify_effect(0.30, 1), EffectMagnitude::kMedium);
  EXPECT_EQ(classify_effect(0.30, 4), EffectMagnitude::kLarge);
  EXPECT_EQ(classify_effect(0.08, 1), EffectMagnitude::kNone);
  EXPECT_EQ(classify_effect(0.08, 4), EffectMagnitude::kSmall);
}

TEST(ClassifyEffect, DegenerateInputs) {
  EXPECT_EQ(classify_effect(0.5, 0), EffectMagnitude::kNone);
  EXPECT_EQ(classify_effect(0.0, 3), EffectMagnitude::kNone);
  EXPECT_EQ(classify_effect(-0.1, 3), EffectMagnitude::kNone);
}

TEST(MagnitudeName, AllValues) {
  EXPECT_EQ(magnitude_name(EffectMagnitude::kNone), "none");
  EXPECT_EQ(magnitude_name(EffectMagnitude::kSmall), "small");
  EXPECT_EQ(magnitude_name(EffectMagnitude::kMedium), "medium");
  EXPECT_EQ(magnitude_name(EffectMagnitude::kLarge), "large");
}

TEST(CompareTopK, IdenticalDistributionsNotSignificant) {
  FrequencyTable a;
  FrequencyTable b;
  for (int i = 0; i < 100; ++i) {
    a.add("x", 3);
    a.add("y", 1);
    b.add("x", 3);
    b.add("y", 1);
  }
  const SignificanceTest test = compare_top_k({&a, &b}, 3, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_FALSE(test.significant);
  EXPECT_EQ(test.magnitude, EffectMagnitude::kNone);
}

TEST(CompareTopK, DisjointTopValuesSignificant) {
  FrequencyTable a;
  a.add("alpha", 500);
  a.add("shared", 100);
  FrequencyTable b;
  b.add("beta", 500);
  b.add("shared", 100);
  const SignificanceTest test = compare_top_k({&a, &b}, 3, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.significant);
  EXPECT_EQ(test.magnitude, EffectMagnitude::kLarge);
}

TEST(CompareTopK, BonferroniSuppressesBorderlineResults) {
  // A moderate difference: significant alone, not after dividing alpha by a
  // large family size.
  FrequencyTable a;
  a.add("x", 60);
  a.add("y", 40);
  FrequencyTable b;
  b.add("x", 45);
  b.add("y", 55);
  const SignificanceTest alone = compare_top_k({&a, &b}, 3, 0.05, 1);
  const SignificanceTest corrected = compare_top_k({&a, &b}, 3, 0.05, 1000);
  ASSERT_TRUE(alone.chi.valid);
  EXPECT_TRUE(alone.significant);
  EXPECT_FALSE(corrected.significant);
}

TEST(CompareTopK, TopKLimitsCategories) {
  // Values outside both top-3 sets must not enter the comparison.
  FrequencyTable a;
  FrequencyTable b;
  for (int i = 0; i < 3; ++i) {
    a.add("top" + std::to_string(i), 100);
    b.add("top" + std::to_string(i), 100);
  }
  // Massive difference hidden in the tail (rank 4+).
  a.add("tail-a", 1);
  b.add("tail-b", 1);
  const SignificanceTest test = compare_top_k({&a, &b}, 3, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_FALSE(test.significant);
}

TEST(CompareTopK, EmptyTablesInvalid) {
  FrequencyTable a;
  FrequencyTable b;
  const SignificanceTest test = compare_top_k({&a, &b}, 3, 0.05, 1);
  EXPECT_FALSE(test.chi.valid);
  EXPECT_FALSE(test.significant);
}

TEST(CompareBinary, DetectsDifferentRates) {
  const SignificanceTest test =
      compare_binary({{900, 100}, {500, 500}}, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.significant);
}

TEST(CompareBinary, SameRatesNotSignificant) {
  const SignificanceTest test = compare_binary({{90, 10}, {900, 100}}, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_FALSE(test.significant);
}

TEST(CompareBinary, AllZeroColumnInvalid) {
  const SignificanceTest test = compare_binary({{10, 0}, {20, 0}}, 0.05, 1);
  EXPECT_FALSE(test.chi.valid);
}

TEST(CompareBinary, ZeroColumnNeverFallsBackToFisher) {
  // Regression: the Fisher-fallback sparsity check used to scan the
  // unreduced table while the significance test ran on the reduced one. A
  // 2x2 with an all-zero column reduces to 2x1 — chi invalid — and the
  // aligned check must leave Fisher untouched even though every unreduced
  // expected count in the zero column is below 5.
  const SignificanceTest test = compare_binary({{1000, 0}, {2000, 0}}, 0.05, 1);
  EXPECT_FALSE(test.chi.valid);
  EXPECT_FALSE(test.used_fisher);
  EXPECT_FALSE(test.significant);
}

TEST(CompareBinary, SparseTwoByTwoUsesFisher) {
  // Genuinely sparse (no empty rows/columns): expected counts below 5, so
  // the chi p-value is replaced by Fisher's exact p-value.
  const SignificanceTest test = compare_binary({{2, 8}, {9, 1}}, 0.05, 1);
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.used_fisher);
}

// Property sweep: under the null hypothesis (both tables drawn from the
// same distribution), Bonferroni-corrected comparisons almost never fire.
class NullCalibration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NullCalibration, FalsePositivesAreRare) {
  util::Rng rng(GetParam());
  int significant = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    FrequencyTable a;
    FrequencyTable b;
    for (int i = 0; i < 400; ++i) {
      a.add("v" + std::to_string(rng.zipf(6, 1.0)));
      b.add("v" + std::to_string(rng.zipf(6, 1.0)));
    }
    if (compare_top_k({&a, &b}, 3, 0.05, 50).significant) ++significant;
  }
  EXPECT_LE(significant, 1);  // alpha/family keeps family-wise errors near zero
}

INSTANTIATE_TEST_SUITE_P(Seeds, NullCalibration, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cw::stats
