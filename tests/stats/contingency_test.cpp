#include "stats/contingency.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cw::stats {
namespace {

TEST(ContingencyTable, Accessors) {
  ContingencyTable table(2, 3);
  table.set(0, 0, 5);
  table.add(0, 0, 2);
  table.set(1, 2, 4);
  EXPECT_DOUBLE_EQ(table.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(table.row_total(0), 7.0);
  EXPECT_DOUBLE_EQ(table.col_total(2), 4.0);
  EXPECT_DOUBLE_EQ(table.grand_total(), 11.0);
  EXPECT_THROW(static_cast<void>(table.at(2, 0)), std::out_of_range);
  EXPECT_THROW(table.set(0, 3, 1.0), std::out_of_range);
}

TEST(ContingencyTable, FromFrequencyTables) {
  FrequencyTable a;
  a.add("x", 3);
  a.add("y", 1);
  FrequencyTable b;
  b.add("y", 2);
  const ContingencyTable table =
      ContingencyTable::from_frequency_tables({&a, &b}, {"x", "y", "z"});
  EXPECT_DOUBLE_EQ(table.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(table.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(table.col_total(2), 0.0);
}

TEST(ContingencyTable, DropEmptyColumnsAndRows) {
  ContingencyTable table(3, 3);
  table.set(0, 0, 1);
  table.set(2, 2, 1);
  EXPECT_EQ(table.drop_empty_columns(), 2u);
  EXPECT_EQ(table.drop_empty_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.at(1, 1), 1.0);
}

TEST(ContingencyTable, ExpectedFrequencyDiagnostics) {
  ContingencyTable table(2, 2);
  table.set(0, 0, 100);
  table.set(0, 1, 1);
  table.set(1, 0, 100);
  table.set(1, 1, 1);
  EXPECT_EQ(table.cells_with_expected_below(5.0), 2u);
  EXPECT_EQ(table.cells_with_expected_below(0.5), 0u);
}

TEST(PearsonChiSquared, TextbookTwoByTwo) {
  // Classic example: observed [[10, 20], [30, 40]].
  ContingencyTable table(2, 2);
  table.set(0, 0, 10);
  table.set(0, 1, 20);
  table.set(1, 0, 30);
  table.set(1, 1, 40);
  const ChiSquared result = pearson_chi_squared(table);
  ASSERT_TRUE(result.valid);
  // chi2 = 4/12 + 4/18 + 4/28 + 4/42 = 0.79365.
  EXPECT_NEAR(result.statistic, 0.79365, 1e-4);
  EXPECT_DOUBLE_EQ(result.df, 1.0);
  EXPECT_NEAR(result.p_value, 0.3730, 1e-3);
  EXPECT_NEAR(result.cramers_v, std::sqrt(0.79365 / 100.0), 1e-4);
  EXPECT_EQ(result.n, 100u);
}

TEST(PearsonChiSquared, IndependentRowsYieldZero) {
  // Rows proportional => statistic 0, p 1.
  ContingencyTable table(2, 3);
  table.set(0, 0, 10);
  table.set(0, 1, 20);
  table.set(0, 2, 30);
  table.set(1, 0, 20);
  table.set(1, 1, 40);
  table.set(1, 2, 60);
  const ChiSquared result = pearson_chi_squared(table);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(PearsonChiSquared, PerfectAssociationMaxCramersV) {
  ContingencyTable table(2, 2);
  table.set(0, 0, 50);
  table.set(1, 1, 50);
  const ChiSquared result = pearson_chi_squared(table);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.cramers_v, 1.0, 1e-9);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(PearsonChiSquared, DegenerateTablesInvalid) {
  {
    ContingencyTable table(1, 3);  // single row
    table.set(0, 0, 5);
    table.set(0, 1, 5);
    EXPECT_FALSE(pearson_chi_squared(table).valid);
  }
  {
    ContingencyTable table(3, 3);  // empty
    EXPECT_FALSE(pearson_chi_squared(table).valid);
  }
  {
    // After dropping empty columns only one column remains.
    ContingencyTable table(2, 2);
    table.set(0, 0, 5);
    table.set(1, 0, 7);
    EXPECT_FALSE(pearson_chi_squared(table).valid);
  }
}

TEST(ContingencyTable, RowAndColTotalVectorsMatchScalarAccessors) {
  ContingencyTable table(3, 4);
  table.set(0, 0, 2);
  table.set(0, 3, 7);
  table.set(1, 1, 5);
  table.set(2, 2, 0.5);
  const std::vector<double> rows = table.row_totals();
  const std::vector<double> cols = table.col_totals();
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(cols.size(), 4u);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(rows[r], table.row_total(r));
  for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(cols[c], table.col_total(c));
}

TEST(PearsonChiSquared, UnreducedTableBitIdenticalToReduced) {
  // A zero row and zero column must not change a single output bit versus
  // the hand-reduced table: pearson reduces internally and the per-cell
  // accumulation order over surviving cells is the same row-major walk.
  ContingencyTable padded(3, 3);
  padded.set(0, 0, 10);
  padded.set(0, 2, 20);
  padded.set(2, 0, 30);
  padded.set(2, 2, 40);  // row 1 and column 1 stay empty
  ContingencyTable reduced(2, 2);
  reduced.set(0, 0, 10);
  reduced.set(0, 1, 20);
  reduced.set(1, 0, 30);
  reduced.set(1, 1, 40);
  const ChiSquared a = pearson_chi_squared(padded);
  const ChiSquared b = pearson_chi_squared(reduced);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_EQ(a.statistic, b.statistic);
  EXPECT_EQ(a.df, b.df);
  EXPECT_EQ(a.p_value, b.p_value);
  EXPECT_EQ(a.cramers_v, b.cramers_v);
  EXPECT_EQ(a.n, b.n);
}

TEST(PearsonChiSquared, ScaleInvarianceOfCramersV) {
  // Doubling all counts doubles chi2 but keeps Cramér's V fixed.
  ContingencyTable small(2, 2);
  small.set(0, 0, 10);
  small.set(0, 1, 30);
  small.set(1, 0, 25);
  small.set(1, 1, 15);
  ContingencyTable big(2, 2);
  big.set(0, 0, 20);
  big.set(0, 1, 60);
  big.set(1, 0, 50);
  big.set(1, 1, 30);
  const ChiSquared a = pearson_chi_squared(small);
  const ChiSquared b = pearson_chi_squared(big);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_NEAR(b.statistic, 2.0 * a.statistic, 1e-9);
  EXPECT_NEAR(a.cramers_v, b.cramers_v, 1e-9);
}

}  // namespace
}  // namespace cw::stats
