#include "stats/fisher.h"

#include <gtest/gtest.h>

namespace cw::stats {
namespace {

TEST(FisherExact, EmptyTableInvalid) {
  EXPECT_FALSE(fisher_exact_2x2(0, 0, 0, 0).valid);
}

TEST(FisherExact, LadyTastingTea) {
  // Fisher's canonical example: [[3,1],[1,3]] -> two-sided p ~= 0.4857.
  const FisherResult result = fisher_exact_2x2(3, 1, 1, 3);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.p_value, 0.4857, 1e-3);
}

TEST(FisherExact, PerfectSeparationSmall) {
  // [[4,0],[0,4]]: p = 2 / C(8,4) = 2/70 ~= 0.02857.
  const FisherResult result = fisher_exact_2x2(4, 0, 0, 4);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.p_value, 0.02857, 1e-4);
}

TEST(FisherExact, BalancedTableNotSignificant) {
  const FisherResult result = fisher_exact_2x2(10, 10, 10, 10);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(FisherExact, ScipyReferenceValue) {
  // scipy.stats.fisher_exact([[8, 2], [1, 5]]) -> p ~= 0.03497.
  const FisherResult result = fisher_exact_2x2(8, 2, 1, 5);
  ASSERT_TRUE(result.valid);
  EXPECT_NEAR(result.p_value, 0.03497, 1e-3);
}

TEST(FisherExact, SymmetricUnderTransposition) {
  const FisherResult a = fisher_exact_2x2(7, 3, 2, 9);
  const FisherResult b = fisher_exact_2x2(7, 2, 3, 9);  // transpose
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_NEAR(a.p_value, b.p_value, 1e-9);
}

TEST(FisherExact, SymmetricUnderRowSwap) {
  const FisherResult a = fisher_exact_2x2(7, 3, 2, 9);
  const FisherResult b = fisher_exact_2x2(2, 9, 7, 3);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_NEAR(a.p_value, b.p_value, 1e-9);
}

TEST(FisherExact, ZeroMarginYieldsOne) {
  // One empty row: only one possible table, p = 1.
  const FisherResult result = fisher_exact_2x2(0, 0, 5, 7);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(FisherExact, AgreesWithChiSquaredAtLargeN) {
  // At large n with a strong effect both tests are decisive.
  const FisherResult result = fisher_exact_2x2(900, 100, 500, 500);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(result.p_value, 1e-10);
}

}  // namespace
}  // namespace cw::stats
