// The CharacteristicTableCache contract: every cached table, slice size,
// and (malicious, benign) pair is bit-identical to the cold build the
// analyses used to do per comparison — for every (vantage, neighbor, scope,
// characteristic) — and the cache-backed analyses reproduce the frame-backed
// ones exactly. Sharded builds (chunk partials merged in order) must be
// indistinguishable from sequential ones at any chunk size or worker count.
#include "analysis/table_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "analysis/geography.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "core/experiment.h"
#include "runner/thread_pool.h"

namespace cw::analysis {
namespace {

const core::ExperimentResult& experiment() {
  static const std::unique_ptr<core::ExperimentResult> result = [] {
    core::ExperimentConfig config;
    config.scale = 0.05;
    config.telescope_slash24s = 4;
    config.duration = util::kDay;
    return core::Experiment(config).run();
  }();
  return *result;
}

constexpr TrafficScope kAllScopes[] = {TrafficScope::kSsh22, TrafficScope::kTelnet23,
                                       TrafficScope::kHttp80, TrafficScope::kHttpAllPorts,
                                       TrafficScope::kAnyAll};

constexpr Characteristic kTableCharacteristics[] = {
    Characteristic::kTopAs, Characteristic::kTopUsername, Characteristic::kTopPassword,
    Characteristic::kTopPayload};

stats::FrequencyTable cold_table(const TrafficSlice& slice, Characteristic characteristic) {
  switch (characteristic) {
    case Characteristic::kTopAs: return as_table(slice);
    case Characteristic::kTopUsername: return username_table(slice);
    case Characteristic::kTopPassword: return password_table(slice);
    case Characteristic::kTopPayload: return payload_table(slice);
    case Characteristic::kFracMalicious: break;
  }
  return {};
}

class TableCacheEquivalence : public ::testing::TestWithParam<TrafficScope> {};

TEST_P(TableCacheEquivalence, VantageTablesMatchColdBuildsForEveryCharacteristic) {
  const auto& result = experiment();
  const CharacteristicTableCache cache(result.frame(), result.classifier());
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    const TrafficSlice slice = slice_vantage(result.frame(), vp.id, GetParam());
    EXPECT_EQ(cache.record_count(vp.id, GetParam()), slice.records.size()) << vp.name;
    EXPECT_EQ(cache.malicious(vp.id, GetParam()),
              malicious_counts(slice, result.classifier()))
        << vp.name;
    for (const Characteristic characteristic : kTableCharacteristics) {
      const stats::FrequencyTable& cached =
          cache.table(vp.id, GetParam(), characteristic);
      const stats::FrequencyTable cold = cold_table(slice, characteristic);
      EXPECT_EQ(cached.total(), cold.total()) << vp.name;
      EXPECT_EQ(cached.sorted(), cold.sorted()) << vp.name;
    }
  }
}

TEST_P(TableCacheEquivalence, NeighborSlicesMatchColdBuilds) {
  const auto& result = experiment();
  const CharacteristicTableCache cache(result.frame(), result.classifier());
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    if (vp.collection != topology::CollectionMethod::kGreyNoise) continue;
    for (std::uint16_t n = 0; n < vp.addresses.size(); ++n) {
      const TrafficSlice slice = slice_neighbor(result.frame(), vp.id, n, GetParam());
      EXPECT_EQ(cache.record_count(vp.id, GetParam(), n), slice.records.size());
      EXPECT_EQ(cache.malicious(vp.id, GetParam(), n),
                malicious_counts(slice, result.classifier()));
      const stats::FrequencyTable cold = cold_table(slice, Characteristic::kTopAs);
      EXPECT_EQ(cache.table(vp.id, GetParam(), Characteristic::kTopAs,
                            /*pool=*/nullptr, n)
                    .sorted(),
                cold.sorted());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScopes, TableCacheEquivalence, ::testing::ValuesIn(kAllScopes),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case TrafficScope::kSsh22: return "Ssh22";
                             case TrafficScope::kTelnet23: return "Telnet23";
                             case TrafficScope::kHttp80: return "Http80";
                             case TrafficScope::kHttpAllPorts: return "HttpAllPorts";
                             case TrafficScope::kAnyAll: return "AnyAll";
                           }
                           return "Unknown";
                         });

TEST(TableCache, SecondLookupReturnsTheSameTableWithoutRebuilding) {
  const auto& result = experiment();
  const CharacteristicTableCache cache(result.frame(), result.classifier());
  const topology::VantageId id = result.deployment().vantage_points().front().id;
  const stats::FrequencyTable& first =
      cache.table(id, TrafficScope::kAnyAll, Characteristic::kTopAs);
  const std::size_t built = cache.tables_built();
  const stats::FrequencyTable& second =
      cache.table(id, TrafficScope::kAnyAll, Characteristic::kTopAs);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.tables_built(), built);
}

TEST(TableCache, ShardedBuildMatchesSequentialAtAnyChunkSize) {
  const auto& result = experiment();
  const capture::SessionFrame& frame = result.frame();
  // The busiest slice in the run: the telescope's Any/All records.
  const topology::VantagePoint* telescope = nullptr;
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) telescope = &vp;
  }
  ASSERT_NE(telescope, nullptr);
  const std::span<const std::uint32_t> vantage_records = frame.for_vantage(telescope->id);
  const std::vector<std::uint32_t> records(vantage_records.begin(), vantage_records.end());
  ASSERT_GT(records.size(), 256u);

  runner::ThreadPool pool(4);
  for (const Characteristic characteristic : kTableCharacteristics) {
    const stats::FrequencyTable sequential =
        build_characteristic_table(frame, records, characteristic);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
      const stats::FrequencyTable sharded =
          build_characteristic_table(frame, records, characteristic, &pool, chunk);
      EXPECT_EQ(sharded.total(), sequential.total());
      EXPECT_EQ(sharded.sorted(), sequential.sorted());
    }
  }
}

TEST(TableCache, FracMaliciousHasNoFrequencyTable) {
  const auto& result = experiment();
  const capture::SessionFrame& frame = result.frame();
  const std::vector<std::uint32_t> records = {0};
  EXPECT_THROW(build_characteristic_table(frame, records, Characteristic::kFracMalicious),
               std::invalid_argument);
}

TEST(TableCache, ConcurrentLookupsOfSharedKeysBuildOnceAndAgree) {
  // TSan hammer: many pool tasks race on the same handful of keys; every
  // reader must observe the one fully-built table.
  const auto& result = experiment();
  const CharacteristicTableCache cache(result.frame(), result.classifier());
  const topology::VantageId id = result.deployment().vantage_points().front().id;
  const stats::FrequencyTable reference = cold_table(
      slice_vantage(result.frame(), id, TrafficScope::kAnyAll), Characteristic::kTopAs);

  runner::ThreadPool pool(8);
  std::vector<int> ok(64, 0);
  pool.parallel_for(ok.size(), [&](std::size_t i) {
    const stats::FrequencyTable& table =
        cache.table(id, TrafficScope::kAnyAll, Characteristic::kTopAs);
    const auto counts = cache.malicious(id, TrafficScope::kAnyAll);
    ok[i] = table.total() == reference.total() &&
            counts.first + counts.second <= cache.record_count(id, TrafficScope::kAnyAll);
  });
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_TRUE(ok[i]) << i;
  EXPECT_EQ(cache.tables_built(), 1u);
}

TEST(TableCache, CacheBackedAnalysesMatchFrameBackedOnes) {
  const auto& result = experiment();
  const CharacteristicTableCache cache(result.frame(), result.classifier());
  for (const TrafficScope scope : kAllScopes) {
    for (const auto& pairs : {telescope_cloud_pairs(result.deployment()),
                              telescope_edu_pairs(result.deployment()),
                              cloud_cloud_pairs(result.deployment()),
                              cloud_edu_pairs(result.deployment())}) {
      const NetworkComparison a = compare_vantage_pairs(
          result.frame(), pairs, scope, Characteristic::kTopAs, result.classifier());
      const NetworkComparison b =
          compare_vantage_pairs(cache, pairs, scope, Characteristic::kTopAs);
      EXPECT_EQ(a.measurable, b.measurable);
      EXPECT_EQ(a.pairs_tested, b.pairs_tested);
      EXPECT_EQ(a.pairs_different, b.pairs_different);
      EXPECT_EQ(a.avg_phi, b.avg_phi);
      EXPECT_EQ(a.strongest, b.strongest);
    }
    for (const Characteristic characteristic : characteristics_for_scope(scope)) {
      const NeighborhoodSummary a = analyze_neighborhoods(result.frame(), scope, characteristic,
                                                          result.classifier());
      const NeighborhoodSummary b = analyze_neighborhoods(cache, scope, characteristic);
      EXPECT_EQ(a.neighborhoods_tested, b.neighborhoods_tested);
      EXPECT_EQ(a.neighborhoods_different, b.neighborhoods_different);
      EXPECT_EQ(a.pct_different, b.pct_different);
      EXPECT_EQ(a.avg_phi, b.avg_phi);
      EXPECT_EQ(a.typical_magnitude, b.typical_magnitude);

      const GeoSimilarity ga = geo_similarity(result.frame(), scope, characteristic,
                                              result.classifier());
      const GeoSimilarity gb = geo_similarity(cache, scope, characteristic);
      EXPECT_EQ(ga.tested, gb.tested);
      EXPECT_EQ(ga.similar, gb.similar);
    }
  }
  for (const topology::Provider provider :
       {topology::Provider::kAws, topology::Provider::kGoogle, topology::Provider::kLinode}) {
    const MostDifferentRegion a =
        most_different_region(result.frame(), provider, TrafficScope::kSsh22,
                              Characteristic::kTopAs, result.classifier());
    const MostDifferentRegion b = most_different_region(
        cache, provider, TrafficScope::kSsh22, Characteristic::kTopAs);
    EXPECT_EQ(a.any_significant, b.any_significant);
    EXPECT_EQ(a.region_code, b.region_code);
    EXPECT_EQ(a.avg_phi, b.avg_phi);
    EXPECT_EQ(a.magnitude, b.magnitude);
    EXPECT_EQ(a.significant_pairs, b.significant_pairs);
  }
}

TEST(TableCache, ExperimentResultCacheIsLazyAndStable) {
  const auto& result = experiment();
  const CharacteristicTableCache& a = result.table_cache();
  const CharacteristicTableCache& b = result.table_cache();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a.frame(), &result.frame());
}

}  // namespace
}  // namespace cw::analysis
