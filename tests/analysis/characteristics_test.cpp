#include "analysis/characteristics.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class CharacteristicsTest : public ::testing::Test {
 protected:
  CharacteristicsTest() {
    topology::VantagePoint vp;
    vp.name = "gn";
    vp.provider = topology::Provider::kAws;
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kGreyNoise;
    vp.region = net::make_region("SG");
    vp.addresses = {net::IPv4Addr(3, 0, 0, 1), net::IPv4Addr(3, 0, 0, 2)};
    vp.open_ports = {22, 80, 8080};
    deployment_.add(std::move(vp));
  }

  void add(net::Port port, std::uint16_t neighbor, net::Asn asn, std::string payload,
           std::optional<proto::Credential> credential = std::nullopt) {
    capture::SessionRecord record;
    record.port = port;
    record.vantage = 0;
    record.neighbor = neighbor;
    record.src_as = asn;
    record.src = 0xb0000000u + next_src_++;
    store_.append(record, payload, credential);
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
  std::uint32_t next_src_ = 0;
};

TEST_F(CharacteristicsTest, ScopeSelection) {
  add(22, 0, 1, proto::ssh_client_banner());
  add(80, 0, 1, proto::http_benign_request(0));
  add(8080, 0, 1, proto::http_benign_request(0));
  add(8080, 0, 1, proto::tls_client_hello());  // TLS on 8080: not HTTP/All

  EXPECT_EQ(slice_vantage(store_, 0, TrafficScope::kSsh22).records.size(), 1u);
  EXPECT_EQ(slice_vantage(store_, 0, TrafficScope::kHttp80).records.size(), 1u);
  // HTTP/All catches HTTP payloads on 80 and 8080, not the TLS one.
  EXPECT_EQ(slice_vantage(store_, 0, TrafficScope::kHttpAllPorts).records.size(), 2u);
  EXPECT_EQ(slice_vantage(store_, 0, TrafficScope::kAnyAll).records.size(), 4u);
}

TEST_F(CharacteristicsTest, SliceNeighborSeparates) {
  add(22, 0, 1, proto::ssh_client_banner());
  add(22, 1, 2, proto::ssh_client_banner());
  add(22, 1, 3, proto::ssh_client_banner());
  EXPECT_EQ(slice_neighbor(store_, 0, 0, TrafficScope::kSsh22).records.size(), 1u);
  EXPECT_EQ(slice_neighbor(store_, 0, 1, TrafficScope::kSsh22).records.size(), 2u);
}

TEST_F(CharacteristicsTest, AsTableCountsTraffic) {
  add(22, 0, 4134, proto::ssh_client_banner());
  add(22, 0, 4134, proto::ssh_client_banner());
  add(22, 0, 174, proto::ssh_client_banner());
  const auto slice = slice_vantage(store_, 0, TrafficScope::kSsh22);
  const auto table = as_table(slice);
  EXPECT_EQ(table.count("AS4134"), 2u);
  EXPECT_EQ(table.count("AS174"), 1u);
  EXPECT_EQ(table.top_k(1).front(), "AS4134");
}

TEST_F(CharacteristicsTest, CredentialTables) {
  add(22, 0, 1, proto::ssh_client_banner(), proto::Credential{"root", "123456"});
  add(22, 0, 1, proto::ssh_client_banner(), proto::Credential{"root", "admin"});
  add(22, 0, 1, proto::ssh_client_banner(), proto::Credential{"admin", "admin"});
  add(22, 0, 1, proto::ssh_client_banner());  // no credential: skipped
  const auto slice = slice_vantage(store_, 0, TrafficScope::kSsh22);
  EXPECT_EQ(username_table(slice).count("root"), 2u);
  EXPECT_EQ(username_table(slice).count("admin"), 1u);
  EXPECT_EQ(password_table(slice).count("admin"), 2u);
  EXPECT_EQ(username_table(slice).total(), 3u);
}

TEST_F(CharacteristicsTest, PayloadTableNormalizesHttp) {
  add(80, 0, 1, "GET /x HTTP/1.1\r\nHost: a\r\n\r\n");
  add(80, 0, 1, "GET /x HTTP/1.1\r\nHost: b\r\n\r\n");  // same after normalization
  const auto slice = slice_vantage(store_, 0, TrafficScope::kHttp80);
  const auto table = payload_table(slice);
  EXPECT_EQ(table.distinct(), 1u);
  EXPECT_EQ(table.total(), 2u);
}

TEST_F(CharacteristicsTest, UniqueCountsDeduplicate) {
  add(22, 0, 4134, proto::ssh_client_banner());
  add(22, 0, 4134, proto::ssh_client_banner());
  const auto slice = slice_vantage(store_, 0, TrafficScope::kSsh22);
  EXPECT_EQ(unique_sources(slice), 2u);  // distinct src per add()
  EXPECT_EQ(unique_ases(slice), 1u);
}

TEST_F(CharacteristicsTest, MaliciousCountsViaClassifier) {
  const ids::RuleEngine engine = ids::curated_engine();
  const MaliciousClassifier classifier(engine);
  add(80, 0, 1, proto::exploit_payload(proto::ExploitKind::kLog4Shell, 0));
  add(80, 0, 1, proto::http_benign_request(0));
  const auto slice = slice_vantage(store_, 0, TrafficScope::kHttp80);
  const auto [malicious, benign] = malicious_counts(slice, classifier);
  EXPECT_EQ(malicious, 1u);
  EXPECT_EQ(benign, 1u);
}

TEST(ScopeName, AllScopes) {
  EXPECT_EQ(scope_name(TrafficScope::kSsh22), "SSH/22");
  EXPECT_EQ(scope_name(TrafficScope::kTelnet23), "Telnet/23");
  EXPECT_EQ(scope_name(TrafficScope::kHttp80), "HTTP/80");
  EXPECT_EQ(scope_name(TrafficScope::kHttpAllPorts), "HTTP/All Ports");
  EXPECT_EQ(scope_name(TrafficScope::kAnyAll), "Any/All");
}

}  // namespace
}  // namespace cw::analysis
