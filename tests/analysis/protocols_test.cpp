#include "analysis/protocols.h"

#include <gtest/gtest.h>

#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class ProtocolsTest : public ::testing::Test {
 protected:
  ProtocolsTest() {
    topology::VantagePoint honeytrap;
    honeytrap.name = "ht";
    honeytrap.provider = topology::Provider::kStanford;
    honeytrap.type = topology::NetworkType::kEducation;
    honeytrap.collection = topology::CollectionMethod::kHoneytrap;
    honeytrap.region = net::make_region("US", "CA");
    honeytrap.addresses = {net::IPv4Addr(171, 64, 0, 1)};
    deployment_.add(std::move(honeytrap));

    topology::VantagePoint greynoise;
    greynoise.name = "gn";
    greynoise.provider = topology::Provider::kAws;
    greynoise.type = topology::NetworkType::kCloud;
    greynoise.collection = topology::CollectionMethod::kGreyNoise;
    greynoise.region = net::make_region("US", "CA");
    greynoise.addresses = {net::IPv4Addr(3, 0, 0, 1)};
    greynoise.open_ports = {80};
    deployment_.add(std::move(greynoise));
  }

  void add(topology::VantageId vantage, net::Port port, std::uint32_t src, std::string payload,
           capture::ActorId actor) {
    capture::SessionRecord record;
    record.vantage = vantage;
    record.port = port;
    record.src = src;
    record.actor = actor;
    store_.append(record, payload, std::nullopt);
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
};

TEST_F(ProtocolsTest, BreakdownPercentages) {
  // 3 HTTP scanners and 1 TLS scanner on port 80 (Honeytrap).
  add(0, 80, 1, proto::http_benign_request(0), 10);
  add(0, 80, 2, proto::http_benign_request(1), 11);
  add(0, 80, 3, proto::http_benign_request(2), 12);
  add(0, 80, 4, proto::tls_client_hello(), 13);

  ProtocolOptions options;
  options.ports = {80};
  const auto rows = protocol_breakdown(store_, deployment_, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].scanners_total, 4u);
  EXPECT_EQ(rows[0].scanners_expected, 3u);
  EXPECT_DOUBLE_EQ(rows[0].pct_expected, 75.0);
  EXPECT_DOUBLE_EQ(rows[0].pct_unexpected, 25.0);
  ASSERT_EQ(rows[0].unexpected_shares.size(), 1u);
  EXPECT_EQ(rows[0].unexpected_shares[0].protocol, net::Protocol::kTls);
  EXPECT_DOUBLE_EQ(rows[0].unexpected_shares[0].pct_of_port, 25.0);
}

TEST_F(ProtocolsTest, GreyNoiseVantagesAreExcluded) {
  add(1, 80, 1, proto::tls_client_hello(), 10);  // GreyNoise: must not count
  add(0, 80, 2, proto::http_benign_request(0), 11);
  ProtocolOptions options;
  options.ports = {80};
  const auto rows = protocol_breakdown(store_, deployment_, options);
  EXPECT_EQ(rows[0].scanners_total, 1u);
  EXPECT_DOUBLE_EQ(rows[0].pct_expected, 100.0);
}

TEST_F(ProtocolsTest, FirstPayloadPerSourceWins) {
  add(0, 80, 1, proto::http_benign_request(0), 10);
  add(0, 80, 1, proto::tls_client_hello(), 10);  // same source, later payload
  ProtocolOptions options;
  options.ports = {80};
  const auto rows = protocol_breakdown(store_, deployment_, options);
  EXPECT_EQ(rows[0].scanners_total, 1u);
  EXPECT_EQ(rows[0].scanners_expected, 1u);
}

TEST_F(ProtocolsTest, OracleBreakdown) {
  std::unordered_map<capture::ActorId, bool> truth = {{10, false}, {11, true}, {12, true}};
  const ReputationOracle oracle(truth, /*unknown_fraction=*/0.0);
  add(0, 80, 1, proto::http_benign_request(0), 10);   // benign HTTP
  add(0, 80, 2, proto::http_benign_request(1), 11);   // malicious HTTP
  add(0, 80, 3, proto::tls_client_hello(), 12);       // malicious TLS

  ProtocolOptions options;
  options.ports = {80};
  options.oracle = &oracle;
  const auto rows = protocol_breakdown(store_, deployment_, options);
  EXPECT_DOUBLE_EQ(rows[0].expected_benign_pct, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].expected_malicious_pct, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].unexpected_malicious_pct, 100.0);
}

TEST_F(ProtocolsTest, EmptyPortYieldsZeroRow) {
  ProtocolOptions options;
  options.ports = {8080};
  const auto rows = protocol_breakdown(store_, deployment_, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].scanners_total, 0u);
}

TEST(ReputationOracle, GroundTruthWithNoUnknowns) {
  std::unordered_map<capture::ActorId, bool> truth = {{1, true}, {2, false}};
  const ReputationOracle oracle(truth, 0.0);
  EXPECT_EQ(oracle.label(1), Reputation::kMalicious);
  EXPECT_EQ(oracle.label(2), Reputation::kBenign);
  EXPECT_EQ(oracle.label(999), Reputation::kUnknown);  // not in the database
}

TEST(ReputationOracle, UnknownFractionDegradesKnowledge) {
  std::unordered_map<capture::ActorId, bool> truth;
  for (capture::ActorId a = 0; a < 1000; ++a) truth[a] = true;
  const ReputationOracle oracle(truth, 0.78);  // the paper's 78% unknown rate
  int unknown = 0;
  for (capture::ActorId a = 0; a < 1000; ++a) {
    if (oracle.label(a) == Reputation::kUnknown) ++unknown;
  }
  EXPECT_NEAR(unknown, 780, 60);
}

TEST(ReputationOracle, DeterministicAcrossInstances) {
  std::unordered_map<capture::ActorId, bool> truth;
  for (capture::ActorId a = 0; a < 100; ++a) truth[a] = a % 2 == 0;
  const ReputationOracle a(truth, 0.5, 42);
  const ReputationOracle b(truth, 0.5, 42);
  for (capture::ActorId id = 0; id < 100; ++id) EXPECT_EQ(a.label(id), b.label(id));
}

}  // namespace
}  // namespace cw::analysis
