#include "analysis/comparison.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  ComparisonTest() : engine_(ids::curated_engine()), classifier_(engine_) {}

  // Builds a slice with `benign` benign HTTP records from `asn_a` and
  // `malicious` exploit records from `asn_b`, all on one synthetic vantage.
  TrafficSlice make_slice(int benign, int malicious, net::Asn asn_a, net::Asn asn_b) {
    TrafficSlice slice;
    slice.store = &store_;
    for (int i = 0; i < benign; ++i) {
      capture::SessionRecord record;
      record.port = 80;
      record.src_as = asn_a;
      store_.append(record, proto::http_benign_request(0), std::nullopt);
      slice.records.push_back(static_cast<std::uint32_t>(store_.size() - 1));
    }
    for (int i = 0; i < malicious; ++i) {
      capture::SessionRecord record;
      record.port = 80;
      record.src_as = asn_b;
      store_.append(record, proto::exploit_payload(proto::ExploitKind::kLog4Shell, 1),
                    std::nullopt);
      slice.records.push_back(static_cast<std::uint32_t>(store_.size() - 1));
    }
    return slice;
  }

  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
  capture::EventStore store_;
};

TEST_F(ComparisonTest, TopAsIdenticalGroupsNotSignificant) {
  const TrafficSlice a = make_slice(100, 100, 1, 2);
  const TrafficSlice b = make_slice(100, 100, 1, 2);
  const auto test =
      compare_characteristic({a, b}, Characteristic::kTopAs, &classifier_, CompareOptions{});
  ASSERT_TRUE(test.chi.valid);
  EXPECT_FALSE(test.significant);
}

TEST_F(ComparisonTest, TopAsDisjointGroupsSignificant) {
  const TrafficSlice a = make_slice(200, 0, 1, 2);
  const TrafficSlice b = make_slice(0, 200, 3, 4);
  const auto test =
      compare_characteristic({a, b}, Characteristic::kTopAs, &classifier_, CompareOptions{});
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.significant);
  EXPECT_EQ(test.magnitude, stats::EffectMagnitude::kLarge);
}

TEST_F(ComparisonTest, FracMaliciousDetectsRateDifference) {
  const TrafficSlice mostly_benign = make_slice(300, 20, 1, 1);
  const TrafficSlice mostly_malicious = make_slice(20, 300, 1, 1);
  const auto test = compare_characteristic({mostly_benign, mostly_malicious},
                                           Characteristic::kFracMalicious, &classifier_,
                                           CompareOptions{});
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.significant);
}

TEST_F(ComparisonTest, FracMaliciousSameRateNotSignificant) {
  const TrafficSlice a = make_slice(100, 50, 1, 1);
  const TrafficSlice b = make_slice(200, 100, 1, 1);
  const auto test = compare_characteristic({a, b}, Characteristic::kFracMalicious, &classifier_,
                                           CompareOptions{});
  ASSERT_TRUE(test.chi.valid);
  EXPECT_FALSE(test.significant);
}

TEST_F(ComparisonTest, PayloadComparisonSeparatesCampaigns) {
  const TrafficSlice a = make_slice(0, 150, 1, 1);  // log4shell campaign
  TrafficSlice b;
  b.store = &store_;
  for (int i = 0; i < 150; ++i) {
    capture::SessionRecord record;
    record.port = 80;
    record.src_as = 1;
    store_.append(record, proto::exploit_payload(proto::ExploitKind::kGponRce, 2), std::nullopt);
    b.records.push_back(static_cast<std::uint32_t>(store_.size() - 1));
  }
  const auto test = compare_characteristic({a, b}, Characteristic::kTopPayload, &classifier_,
                                           CompareOptions{});
  ASSERT_TRUE(test.chi.valid);
  EXPECT_TRUE(test.significant);
}

TEST(Measurable, CollectionMethodMatrix) {
  using topology::CollectionMethod;
  // GreyNoise measures everything.
  for (auto c : {Characteristic::kTopAs, Characteristic::kFracMalicious,
                 Characteristic::kTopUsername, Characteristic::kTopPassword,
                 Characteristic::kTopPayload}) {
    EXPECT_TRUE(measurable(c, CollectionMethod::kGreyNoise, TrafficScope::kSsh22));
  }
  // Honeytrap: no credentials; no intent on auth protocols.
  EXPECT_FALSE(
      measurable(Characteristic::kTopUsername, CollectionMethod::kHoneytrap, TrafficScope::kSsh22));
  EXPECT_FALSE(measurable(Characteristic::kTopPassword, CollectionMethod::kHoneytrap,
                          TrafficScope::kTelnet23));
  EXPECT_FALSE(measurable(Characteristic::kFracMalicious, CollectionMethod::kHoneytrap,
                          TrafficScope::kSsh22));
  EXPECT_TRUE(measurable(Characteristic::kFracMalicious, CollectionMethod::kHoneytrap,
                         TrafficScope::kHttp80));
  EXPECT_TRUE(
      measurable(Characteristic::kTopPayload, CollectionMethod::kHoneytrap, TrafficScope::kHttp80));
  // Telescope: only source attribution.
  EXPECT_TRUE(measurable(Characteristic::kTopAs, CollectionMethod::kTelescope,
                         TrafficScope::kAnyAll));
  EXPECT_FALSE(measurable(Characteristic::kTopPayload, CollectionMethod::kTelescope,
                          TrafficScope::kHttp80));
  EXPECT_FALSE(measurable(Characteristic::kFracMalicious, CollectionMethod::kTelescope,
                          TrafficScope::kAnyAll));
}

TEST(CharacteristicName, AllValues) {
  EXPECT_EQ(characteristic_name(Characteristic::kTopAs), "Top 3 AS");
  EXPECT_EQ(characteristic_name(Characteristic::kFracMalicious), "Fraction Malicious");
  EXPECT_EQ(characteristic_name(Characteristic::kTopUsername), "Top 3 Username");
  EXPECT_EQ(characteristic_name(Characteristic::kTopPassword), "Top 3 Password");
  EXPECT_EQ(characteristic_name(Characteristic::kTopPayload), "Top 3 Payloads");
}

}  // namespace
}  // namespace cw::analysis
