#include "analysis/campaigns.h"

#include <gtest/gtest.h>

#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class CampaignsTest : public ::testing::Test {
 protected:
  void add(util::SimTime time, std::uint32_t src, capture::ActorId actor, std::string payload,
           net::Port port = 80) {
    capture::SessionRecord record;
    record.time = time;
    record.src = src;
    record.actor = actor;
    record.port = port;
    record.vantage = 0;
    store_.append(record, payload, std::nullopt);
  }

  capture::EventStore store_;
};

TEST_F(CampaignsTest, ClustersMultiSourceCampaign) {
  const std::string payload = proto::exploit_payload(proto::ExploitKind::kLog4Shell, 7);
  for (std::uint32_t src = 1; src <= 5; ++src) {
    add(src * util::kHour, src, /*actor=*/42, payload);
  }
  const auto campaigns = infer_campaigns(store_);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].sources.size(), 5u);
  EXPECT_EQ(campaigns[0].events, 5u);
  EXPECT_EQ(campaigns[0].dominant_port, 80);
  EXPECT_EQ(campaigns[0].first_seen, util::kHour);
  EXPECT_EQ(campaigns[0].last_seen, 5 * util::kHour);
}

TEST_F(CampaignsTest, SingletonSourcesAreNotCampaigns) {
  add(0, 1, 1, proto::exploit_payload(proto::ExploitKind::kGponRce, 1));
  add(1000, 2, 2, proto::exploit_payload(proto::ExploitKind::kThinkPhpRce, 2));
  EXPECT_TRUE(infer_campaigns(store_).empty());
}

TEST_F(CampaignsTest, HostHeaderDifferencesCollapseViaNormalization) {
  // Same campaign tool, per-target Host headers: must cluster together.
  for (std::uint32_t src = 1; src <= 4; ++src) {
    add(src * util::kMinute, src, 9,
        "POST /api HTTP/1.1\r\nHost: 3.0.0." + std::to_string(src) + "\r\n\r\nexploit");
  }
  const auto campaigns = infer_campaigns(store_);
  ASSERT_EQ(campaigns.size(), 1u);
  EXPECT_EQ(campaigns[0].sources.size(), 4u);
}

TEST_F(CampaignsTest, QuietGapSplitsCampaign) {
  const std::string payload = proto::exploit_payload(proto::ExploitKind::kNetgearRce, 3);
  for (std::uint32_t src = 1; src <= 3; ++src) add(src * util::kHour, src, 5, payload);
  // Second burst four days later with three more sources.
  for (std::uint32_t src = 11; src <= 13; ++src) {
    add(4 * util::kDay + src * util::kHour, src, 5, payload);
  }
  CampaignInferenceOptions options;
  options.max_gap = 2 * util::kDay;
  const auto campaigns = infer_campaigns(store_, options);
  EXPECT_EQ(campaigns.size(), 2u);
}

TEST_F(CampaignsTest, TelescopeRecordsAreIgnored) {
  for (std::uint32_t src = 1; src <= 5; ++src) {
    capture::SessionRecord record;  // no payload retained
    record.time = src;
    record.src = src;
    record.port = 445;
    store_.append(record, {}, std::nullopt);
  }
  EXPECT_TRUE(infer_campaigns(store_).empty());
}

TEST_F(CampaignsTest, ValidationMeasuresPurityAndRecall) {
  // True campaign A: actor 1, 4 sources, one payload.
  const std::string payload_a = proto::exploit_payload(proto::ExploitKind::kLog4Shell, 1);
  for (std::uint32_t src = 1; src <= 4; ++src) add(src, src, 1, payload_a);
  // True campaign B: actor 2, 3 sources, its own payload.
  const std::string payload_b = proto::exploit_payload(proto::ExploitKind::kGponRce, 2);
  for (std::uint32_t src = 11; src <= 13; ++src) add(src, src, 2, payload_b);
  // A shared-payload confusion: actor 3's source reuses campaign A's bytes.
  add(100, 99, 3, payload_a);

  const auto campaigns = infer_campaigns(store_);
  const auto validation = validate_campaigns(store_, campaigns);
  EXPECT_EQ(validation.inferred, 2u);
  EXPECT_EQ(validation.true_campaigns, 2u);
  // Campaign A's cluster contains actor 3's source: impure. B is pure.
  EXPECT_EQ(validation.pure, 1u);
  EXPECT_EQ(validation.recovered, 1u);
  EXPECT_DOUBLE_EQ(validation.purity(), 0.5);
  EXPECT_DOUBLE_EQ(validation.recall(), 0.5);
}

TEST_F(CampaignsTest, CampaignsSortByVolume) {
  const std::string big = proto::exploit_payload(proto::ExploitKind::kLog4Shell, 1);
  const std::string small = proto::exploit_payload(proto::ExploitKind::kGponRce, 2);
  for (std::uint32_t src = 1; src <= 3; ++src) add(src, src, 1, small);
  for (std::uint32_t src = 11; src <= 20; ++src) add(src, src, 2, big);
  const auto campaigns = infer_campaigns(store_);
  ASSERT_EQ(campaigns.size(), 2u);
  EXPECT_GT(campaigns[0].events, campaigns[1].events);
}

}  // namespace
}  // namespace cw::analysis
