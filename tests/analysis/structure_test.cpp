#include "analysis/structure.h"

#include <gtest/gtest.h>

namespace cw::analysis {
namespace {

topology::Deployment telescope_deployment(int slash24s) {
  topology::Deployment deployment;
  topology::VantagePoint vp;
  vp.name = "Orion";
  vp.provider = topology::Provider::kOrion;
  vp.type = topology::NetworkType::kTelescope;
  vp.collection = topology::CollectionMethod::kTelescope;
  vp.region = net::make_region("US", "MI");
  vp.addresses =
      topology::Deployment::allocate_block(net::IPv4Addr(71, 96, 0, 0), slash24s * 256);
  deployment.add(std::move(vp));
  return deployment;
}

TEST(TelescopeAddressCounts, CountsUniqueSourcesPerAddress) {
  const topology::Deployment deployment = telescope_deployment(1);
  capture::EventStore store;
  auto hit = [&](std::uint32_t offset, std::uint32_t src) {
    capture::SessionRecord record;
    record.vantage = 0;
    record.neighbor = static_cast<std::uint16_t>(offset);
    record.port = 445;
    record.src = src;
    store.append(record, {}, std::nullopt);
  };
  hit(5, 100);
  hit(5, 100);  // duplicate source: counted once
  hit(5, 101);
  hit(9, 100);

  const auto counts = telescope_address_counts(store, deployment, 445);
  ASSERT_EQ(counts.size(), 256u);
  EXPECT_DOUBLE_EQ(counts[5], 2.0);
  EXPECT_DOUBLE_EQ(counts[9], 1.0);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
}

TEST(TelescopeAddressCounts, FiltersByPort) {
  const topology::Deployment deployment = telescope_deployment(1);
  capture::EventStore store;
  capture::SessionRecord record;
  record.vantage = 0;
  record.neighbor = 3;
  record.port = 80;
  record.src = 1;
  store.append(record, {}, std::nullopt);
  EXPECT_DOUBLE_EQ(telescope_address_counts(store, deployment, 80)[3], 1.0);
  EXPECT_DOUBLE_EQ(telescope_address_counts(store, deployment, 22)[3], 0.0);
}

TEST(StructureStats, ClassMeansAndRatios) {
  // One /16 worth of /24s would be needed for real any-255 addresses; use 2
  // /24s and synthesize counts: plain addresses get 10, the .255 enders 2,
  // the first-of-/16 (offset 0: 71.96.0.0) gets 40.
  const topology::Deployment deployment = telescope_deployment(2);
  const topology::VantagePoint& telescope = deployment.at(0);
  std::vector<double> counts(telescope.addresses.size(), 10.0);
  counts[255] = 2.0;  // 71.96.0.255
  counts[511] = 2.0;  // 71.96.1.255
  counts[0] = 40.0;   // 71.96.0.0 is first-of-/16

  const StructureStats stats = structure_stats(counts, telescope);
  EXPECT_DOUBLE_EQ(stats.mean_last_255, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_first_16, 40.0);
  EXPECT_DOUBLE_EQ(stats.mean_plain, 10.0);
  EXPECT_DOUBLE_EQ(stats.avoidance_last_255(), 5.0);
  EXPECT_DOUBLE_EQ(stats.preference_first_16(), 4.0);
}

TEST(StructureStats, Any255ClassNeedsWideTelescope) {
  // 257 /24s spans x.x.255.x: those addresses land in the any-255 class.
  topology::Deployment deployment = telescope_deployment(257);
  const topology::VantagePoint& telescope = deployment.at(0);
  std::vector<double> counts(telescope.addresses.size(), 9.0);
  const StructureStats stats = structure_stats(counts, telescope);
  EXPECT_GT(stats.mean_any_255, 0.0);  // the 71.96.255.0/24 block exists
}

TEST(TelescopeCounter, TalliesTrackedPorts) {
  const topology::Deployment deployment = telescope_deployment(1);
  TelescopeCounter counter(deployment.at(0), {22, 445});
  topology::Target target;  // unused by consume
  capture::ScanEvent event;
  event.dst = net::IPv4Addr(71, 96, 0, 7);
  event.dst_port = 22;
  EXPECT_TRUE(counter.consume(event, target));
  EXPECT_TRUE(counter.consume(event, target));
  event.dst_port = 445;
  EXPECT_TRUE(counter.consume(event, target));
  event.dst_port = 9999;  // untracked port: consumed, not tallied
  EXPECT_TRUE(counter.consume(event, target));

  EXPECT_DOUBLE_EQ(counter.counts(22)[7], 2.0);
  EXPECT_DOUBLE_EQ(counter.counts(445)[7], 1.0);
  EXPECT_DOUBLE_EQ(counter.counts(22)[8], 0.0);
  EXPECT_THROW(static_cast<void>(counter.counts(9999)), std::out_of_range);
}

TEST(TelescopeCounter, OutOfRangeAddressesIgnored) {
  const topology::Deployment deployment = telescope_deployment(1);
  TelescopeCounter counter(deployment.at(0), {22});
  topology::Target target;
  capture::ScanEvent event;
  event.dst = net::IPv4Addr(71, 97, 0, 0);  // outside the single /24
  event.dst_port = 22;
  EXPECT_TRUE(counter.consume(event, target));
  for (double c : counter.counts(22)) EXPECT_DOUBLE_EQ(c, 0.0);
}

}  // namespace
}  // namespace cw::analysis
