#include "analysis/geography.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

topology::VantagePoint vantage(const char* country, const char* sub,
                               topology::Provider provider) {
  topology::VantagePoint vp;
  vp.provider = provider;
  vp.type = topology::NetworkType::kCloud;
  vp.collection = topology::CollectionMethod::kGreyNoise;
  vp.region = net::make_region(country, sub);
  vp.name = std::string(topology::provider_name(provider)) + "/" + vp.region.code();
  return vp;
}

TEST(ClassifyPair, ContinentalGroups) {
  const auto us_a = vantage("US", "OR", topology::Provider::kAws);
  const auto us_b = vantage("US", "CA", topology::Provider::kAws);
  const auto de = vantage("DE", "", topology::Provider::kAws);
  const auto fr = vantage("FR", "", topology::Provider::kAws);
  const auto sg = vantage("SG", "", topology::Provider::kAws);
  const auto jp = vantage("JP", "", topology::Provider::kAws);
  const auto br = vantage("BR", "", topology::Provider::kAws);

  EXPECT_EQ(classify_pair(us_a, us_b), PairGroup::kUs);
  EXPECT_EQ(classify_pair(de, fr), PairGroup::kEu);
  EXPECT_EQ(classify_pair(sg, jp), PairGroup::kApac);
  EXPECT_EQ(classify_pair(us_a, de), PairGroup::kIntercontinental);
  EXPECT_EQ(classify_pair(sg, de), PairGroup::kIntercontinental);
  // Two South American regions: same continent but outside the three
  // blocks; the paper folds these into the cross-continental bucket.
  const auto br2 = vantage("EC", "", topology::Provider::kAws);
  EXPECT_EQ(classify_pair(br, br2), PairGroup::kIntercontinental);
}

TEST(PairGroupName, AllGroups) {
  EXPECT_EQ(pair_group_name(PairGroup::kUs), "US");
  EXPECT_EQ(pair_group_name(PairGroup::kEu), "EU");
  EXPECT_EQ(pair_group_name(PairGroup::kApac), "APAC");
  EXPECT_EQ(pair_group_name(PairGroup::kIntercontinental), "Intercontinental");
}

class GeoAnalysisTest : public ::testing::Test {
 protected:
  GeoAnalysisTest() : engine_(ids::curated_engine()), classifier_(engine_) {
    // Three AWS regions: two US, one SG. The SG region receives a distinct
    // exploit campaign on top of the shared baseline.
    deployment_.add(vantage("US", "OR", topology::Provider::kAws));
    deployment_.add(vantage("US", "CA", topology::Provider::kAws));
    deployment_.add(vantage("SG", "", topology::Provider::kAws));
    for (topology::VantageId id = 0; id < 3; ++id) {
      for (int i = 0; i < 120; ++i) {
        capture::SessionRecord record;
        record.vantage = id;
        record.port = 80;
        record.src_as = 100 + static_cast<net::Asn>(i % 3);
        record.src = 1000 + static_cast<std::uint32_t>(i);
        store_.append(record, proto::http_benign_request(static_cast<std::uint32_t>(i % 3)),
                      std::nullopt);
      }
    }
    for (int i = 0; i < 150; ++i) {
      capture::SessionRecord record;
      record.vantage = 2;  // SG only
      record.port = 80;
      record.src_as = 777;
      record.src = 5000 + static_cast<std::uint32_t>(i);
      store_.append(record, proto::exploit_payload(proto::ExploitKind::kGponRce, 9),
                    std::nullopt);
    }
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
};

TEST_F(GeoAnalysisTest, SimilarityFindsApDivergence) {
  const GeoSimilarity similarity = geo_similarity(store_, deployment_, TrafficScope::kHttp80,
                                                  Characteristic::kTopPayload, classifier_);
  // One US pair (similar), two intercontinental pairs (US-SG: different).
  EXPECT_EQ(similarity.tested[static_cast<std::size_t>(PairGroup::kUs)], 1u);
  EXPECT_EQ(similarity.similar[static_cast<std::size_t>(PairGroup::kUs)], 1u);
  EXPECT_EQ(similarity.tested[static_cast<std::size_t>(PairGroup::kIntercontinental)], 2u);
  EXPECT_EQ(similarity.similar[static_cast<std::size_t>(PairGroup::kIntercontinental)], 0u);
}

TEST_F(GeoAnalysisTest, MostDifferentRegionIsSingapore) {
  const MostDifferentRegion most =
      most_different_region(store_, deployment_, topology::Provider::kAws,
                            TrafficScope::kHttp80, Characteristic::kTopPayload, classifier_);
  ASSERT_TRUE(most.any_significant);
  EXPECT_EQ(most.region_code, "AP-SG");
  EXPECT_EQ(most.significant_pairs, 2u);
  EXPECT_GT(most.avg_phi, 0.3);
}

TEST_F(GeoAnalysisTest, NoSignificanceWithoutDivergence) {
  // Restrict to the two US vantage points by asking for a provider whose
  // only regions are those (simulate by comparing a characteristic on which
  // they are identical).
  const MostDifferentRegion most =
      most_different_region(store_, deployment_, topology::Provider::kGoogle,
                            TrafficScope::kHttp80, Characteristic::kTopPayload, classifier_);
  EXPECT_FALSE(most.any_significant);  // no Google vantage points at all
}

TEST_F(GeoAnalysisTest, MinRecordsFilterSkipsThinVantages) {
  GeoOptions options;
  options.min_records = 100000;  // nothing qualifies
  const GeoSimilarity similarity =
      geo_similarity(store_, deployment_, TrafficScope::kHttp80, Characteristic::kTopPayload,
                     classifier_, options);
  for (std::size_t g = 0; g < kPairGroupCount; ++g) EXPECT_EQ(similarity.tested[g], 0u);
}

}  // namespace
}  // namespace cw::analysis
