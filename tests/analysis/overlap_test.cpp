#include "analysis/overlap.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class OverlapTest : public ::testing::Test {
 protected:
  OverlapTest() : engine_(ids::curated_engine()), classifier_(engine_) {
    auto add_vantage = [&](const char* name, topology::Provider provider,
                           topology::NetworkType type, topology::CollectionMethod method) {
      topology::VantagePoint vp;
      vp.name = name;
      vp.provider = provider;
      vp.type = type;
      vp.collection = method;
      vp.region = net::make_region("US", "CA");
      vp.addresses = {net::IPv4Addr(3, 0, 0, 1)};
      deployment_.add(std::move(vp));
    };
    add_vantage("cloud", topology::Provider::kAws, topology::NetworkType::kCloud,
                topology::CollectionMethod::kGreyNoise);
    add_vantage("edu", topology::Provider::kStanford, topology::NetworkType::kEducation,
                topology::CollectionMethod::kHoneytrap);
    add_vantage("tel", topology::Provider::kOrion, topology::NetworkType::kTelescope,
                topology::CollectionMethod::kTelescope);
  }

  // network: 0 cloud, 1 edu, 2 telescope.
  void add(int network, net::Port port, std::uint32_t src, std::string payload = {},
           std::optional<proto::Credential> credential = std::nullopt,
           capture::ActorId actor = 9) {
    capture::SessionRecord record;
    record.vantage = static_cast<topology::VantageId>(network);
    record.port = port;
    record.src = src;
    record.actor = actor;
    if (network == 2) {
      store_.append(record, {}, std::nullopt);  // telescope keeps nothing
    } else {
      store_.append(record, payload, credential);
    }
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
};

TEST_F(OverlapTest, ExactFractions) {
  // Cloud port 22 sources: 1, 2, 3, 4. Telescope: 1, 2 (and 5 telescope-only).
  for (std::uint32_t src : {1u, 2u, 3u, 4u}) add(0, 22, src, "SSH-2.0-x\r\n");
  for (std::uint32_t src : {1u, 2u, 5u}) add(2, 22, src);
  // EDU port 22: sources 1, 9.
  for (std::uint32_t src : {1u, 9u}) add(1, 22, src, "SSH-2.0-x\r\n");

  const auto rows = scanner_overlap(store_, deployment_, {22});
  ASSERT_EQ(rows.size(), 1u);
  const OverlapRow& row = rows[0];
  EXPECT_EQ(row.cloud_ips, 4u);
  EXPECT_EQ(row.edu_ips, 2u);
  EXPECT_EQ(row.telescope_ips, 3u);
  ASSERT_TRUE(row.tel_cloud_over_cloud.has_value());
  EXPECT_DOUBLE_EQ(*row.tel_cloud_over_cloud, 0.5);   // {1,2} of {1,2,3,4}
  ASSERT_TRUE(row.tel_edu_over_edu.has_value());
  EXPECT_DOUBLE_EQ(*row.tel_edu_over_edu, 0.5);       // {1} of {1,9}
  ASSERT_TRUE(row.cloud_edu_over_cloud.has_value());
  EXPECT_DOUBLE_EQ(*row.cloud_edu_over_cloud, 0.25);  // {1} of {1,2,3,4}
}

TEST_F(OverlapTest, EmptyDenominatorsYieldNullopt) {
  add(2, 443, 7);  // telescope only
  const auto rows = scanner_overlap(store_, deployment_, {443});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].tel_cloud_over_cloud.has_value());
  EXPECT_FALSE(rows[0].tel_edu_over_edu.has_value());
}

TEST_F(OverlapTest, ExcludedActorsAreInvisible) {
  add(0, 22, 1, "SSH-2.0-x\r\n", std::nullopt, /*actor=*/1);  // crawler
  add(0, 22, 2, "SSH-2.0-x\r\n", std::nullopt, /*actor=*/9);
  add(2, 22, 1, {}, std::nullopt, /*actor=*/1);
  const auto rows = scanner_overlap(store_, deployment_, {22}, {1});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cloud_ips, 1u);
  EXPECT_EQ(rows[0].telescope_ips, 0u);
}

TEST_F(OverlapTest, AttackerOverlapUsesMeasuredIntent) {
  // Source 1: malicious on cloud (credential) and present in telescope.
  add(0, 22, 1, proto::ssh_client_banner(), proto::Credential{"root", "root"});
  // Source 2: benign on cloud, also in telescope — must not count.
  add(0, 22, 2, proto::ssh_client_banner());
  add(2, 22, 1);
  add(2, 22, 2);
  const auto rows = attacker_overlap(store_, deployment_, classifier_, {22});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].malicious_cloud_ips, 1u);
  ASSERT_TRUE(rows[0].tel_over_malicious_cloud.has_value());
  EXPECT_DOUBLE_EQ(*rows[0].tel_over_malicious_cloud, 1.0);
}

TEST_F(OverlapTest, EduSshIntentUnmeasurableYieldsNullopt) {
  // Honeytrap EDU: SSH banners with no credentials — nothing measurable as
  // malicious, so the cell is absent (the paper's "x").
  add(1, 22, 1, proto::ssh_client_banner());
  add(2, 22, 1);
  const auto rows = attacker_overlap(store_, deployment_, classifier_, {22});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].tel_over_malicious_edu.has_value());
}

TEST_F(OverlapTest, HttpExploitOnEduIsMeasurable) {
  add(1, 80, 1, proto::exploit_payload(proto::ExploitKind::kLog4Shell, 0));
  add(2, 80, 1);
  const auto rows = attacker_overlap(store_, deployment_, classifier_, {80});
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_TRUE(rows[0].tel_over_malicious_edu.has_value());
  EXPECT_DOUBLE_EQ(*rows[0].tel_over_malicious_edu, 1.0);
}

}  // namespace
}  // namespace cw::analysis
