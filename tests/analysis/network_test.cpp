#include "analysis/network.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

TEST(NetworkPairs, BuildersFindTable1Deployments) {
  topology::DeploymentConfig config;
  config.telescope_slash24s = 2;
  const auto deployment = topology::Deployment::table1(config);

  const auto cc = cloud_cloud_pairs(deployment);
  EXPECT_GT(cc.size(), 5u);
  for (const auto& [a, b] : cc) {
    EXPECT_NE(deployment.at(a).provider, deployment.at(b).provider);
    EXPECT_EQ(deployment.at(a).type, topology::NetworkType::kCloud);
    EXPECT_EQ(deployment.at(b).type, topology::NetworkType::kCloud);
  }

  const auto ce = cloud_edu_pairs(deployment);
  EXPECT_EQ(ce.size(), 4u);
  for (const auto& [a, b] : ce) {
    EXPECT_EQ(deployment.at(a).type, topology::NetworkType::kCloud);
    EXPECT_EQ(deployment.at(b).type, topology::NetworkType::kEducation);
  }

  EXPECT_EQ(edu_edu_pairs(deployment).size(), 1u);
  EXPECT_EQ(telescope_edu_pairs(deployment).size(), 2u);
  EXPECT_EQ(telescope_cloud_pairs(deployment).size(), 3u);
}

TEST(NetworkPairs, EmptyFor2020Honeytrap) {
  topology::DeploymentConfig config;
  config.year = topology::ScenarioYear::k2020;
  config.telescope_slash24s = 2;
  const auto deployment = topology::Deployment::table1(config);
  EXPECT_TRUE(cloud_edu_pairs(deployment).empty());
  EXPECT_TRUE(edu_edu_pairs(deployment).empty());
  EXPECT_FALSE(cloud_cloud_pairs(deployment).empty());
}

class NetworkCompareTest : public ::testing::Test {
 protected:
  NetworkCompareTest() : engine_(ids::curated_engine()), classifier_(engine_) {
    auto add = [&](topology::CollectionMethod method, topology::NetworkType type) {
      topology::VantagePoint vp;
      vp.name = "v" + std::to_string(deployment_.size());
      vp.provider = topology::Provider::kAws;
      vp.type = type;
      vp.collection = method;
      vp.region = net::make_region("US", "CA");
      vp.addresses = {net::IPv4Addr(3, 0, static_cast<std::uint8_t>(deployment_.size()), 1)};
      deployment_.add(std::move(vp));
    };
    add(topology::CollectionMethod::kGreyNoise, topology::NetworkType::kCloud);   // 0
    add(topology::CollectionMethod::kGreyNoise, topology::NetworkType::kCloud);   // 1
    add(topology::CollectionMethod::kHoneytrap, topology::NetworkType::kEducation);  // 2
  }

  void fill(topology::VantageId vantage, net::Asn asn, int count) {
    for (int i = 0; i < count; ++i) {
      capture::SessionRecord record;
      record.vantage = vantage;
      record.port = 80;
      record.src_as = asn;
      record.src = static_cast<std::uint32_t>(vantage) * 10000 + static_cast<std::uint32_t>(i);
      store_.append(record, proto::http_benign_request(0), std::nullopt);
    }
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
};

TEST_F(NetworkCompareTest, IdenticalVantagesNotDifferent) {
  fill(0, 4134, 200);
  fill(0, 174, 100);
  fill(1, 4134, 200);
  fill(1, 174, 100);
  NetworkOptions options;
  options.family_scale = 1;
  const auto comparison = compare_vantage_pairs(store_, deployment_, {{0, 1}},
                                                TrafficScope::kHttp80,
                                                Characteristic::kTopAs, classifier_, options);
  EXPECT_TRUE(comparison.measurable);
  EXPECT_EQ(comparison.pairs_tested, 1u);
  EXPECT_EQ(comparison.pairs_different, 0u);
}

TEST_F(NetworkCompareTest, DisjointAsMixesAreDifferent) {
  fill(0, 4134, 300);
  fill(1, 174, 300);
  NetworkOptions options;
  options.family_scale = 1;
  const auto comparison = compare_vantage_pairs(store_, deployment_, {{0, 1}},
                                                TrafficScope::kHttp80,
                                                Characteristic::kTopAs, classifier_, options);
  EXPECT_EQ(comparison.pairs_different, 1u);
  EXPECT_GT(comparison.avg_phi, 0.9);
  EXPECT_EQ(comparison.strongest, stats::EffectMagnitude::kLarge);
}

TEST_F(NetworkCompareTest, StudyWideFamilySuppressesBorderlineDifferences) {
  // A mild 53/47 vs 47/53 shift (phi ~ 0.06 at n = 2000): significant
  // alone, not under the study-wide Bonferroni family.
  fill(0, 4134, 530);
  fill(0, 174, 470);
  fill(1, 4134, 470);
  fill(1, 174, 530);
  NetworkOptions lenient;
  lenient.family_scale = 1;
  NetworkOptions strict;
  strict.family_scale = 1000;
  const auto loose = compare_vantage_pairs(store_, deployment_, {{0, 1}},
                                           TrafficScope::kHttp80, Characteristic::kTopAs,
                                           classifier_, lenient);
  const auto corrected = compare_vantage_pairs(store_, deployment_, {{0, 1}},
                                               TrafficScope::kHttp80, Characteristic::kTopAs,
                                               classifier_, strict);
  EXPECT_EQ(loose.pairs_different, 1u);
  EXPECT_EQ(corrected.pairs_different, 0u);
}

TEST_F(NetworkCompareTest, UnmeasurableCharacteristicShortCircuits) {
  fill(0, 4134, 100);
  fill(2, 4134, 100);
  const auto comparison = compare_vantage_pairs(store_, deployment_, {{0, 2}},
                                                TrafficScope::kSsh22,
                                                Characteristic::kTopUsername, classifier_);
  EXPECT_FALSE(comparison.measurable);
  EXPECT_EQ(comparison.pairs_tested, 0u);
}

TEST_F(NetworkCompareTest, ThinSlicesAreSkipped) {
  fill(0, 4134, 3);
  fill(1, 174, 3);
  const auto comparison = compare_vantage_pairs(store_, deployment_, {{0, 1}},
                                                TrafficScope::kHttp80,
                                                Characteristic::kTopAs, classifier_);
  EXPECT_EQ(comparison.pairs_tested, 0u);
}

}  // namespace
}  // namespace cw::analysis
