#include "analysis/malicious.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class MaliciousClassifierTest : public ::testing::Test {
 protected:
  MaliciousClassifierTest() : engine_(ids::curated_engine()), classifier_(engine_) {}

  std::uint32_t add(std::string payload, std::optional<proto::Credential> credential,
                    net::Port port) {
    capture::SessionRecord record;
    record.port = port;
    record.vantage = 0;
    store_.append(record, payload, credential);
    return static_cast<std::uint32_t>(store_.size() - 1);
  }

  MeasuredIntent classify(std::uint32_t index) {
    return classifier_.classify(store_.records()[index], store_);
  }

  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
  capture::EventStore store_;
};

TEST_F(MaliciousClassifierTest, CredentialAttemptIsMalicious) {
  const auto index = add(proto::ssh_client_banner(), proto::Credential{"root", "root"}, 22);
  EXPECT_EQ(classify(index), MeasuredIntent::kMalicious);
}

TEST_F(MaliciousClassifierTest, ExploitPayloadIsMalicious) {
  const auto index =
      add(proto::exploit_payload(proto::ExploitKind::kLog4Shell, 1), std::nullopt, 80);
  EXPECT_EQ(classify(index), MeasuredIntent::kMalicious);
}

TEST_F(MaliciousClassifierTest, BenignProbeIsBenign) {
  const auto index = add(proto::http_benign_request(3), std::nullopt, 80);
  EXPECT_EQ(classify(index), MeasuredIntent::kBenign);
}

TEST_F(MaliciousClassifierTest, BannerOnlySshIsBenign) {
  const auto index = add(proto::ssh_client_banner(), std::nullopt, 22);
  EXPECT_EQ(classify(index), MeasuredIntent::kBenign);
}

TEST_F(MaliciousClassifierTest, NoPayloadIsUnobservable) {
  const auto index = add({}, std::nullopt, 22);
  EXPECT_EQ(classify(index), MeasuredIntent::kUnobservable);
}

TEST_F(MaliciousClassifierTest, CountSplitsCorrectly) {
  std::vector<std::uint32_t> indices;
  indices.push_back(add(proto::exploit_payload(proto::ExploitKind::kThinkPhpRce, 1), std::nullopt, 80));
  indices.push_back(add(proto::http_benign_request(0), std::nullopt, 80));
  indices.push_back(add(proto::http_benign_request(1), std::nullopt, 80));
  indices.push_back(add({}, std::nullopt, 80));  // unobservable: excluded
  const auto [malicious, benign] = classifier_.count(store_, indices);
  EXPECT_EQ(malicious, 1u);
  EXPECT_EQ(benign, 2u);
}

TEST_F(MaliciousClassifierTest, VerdictCacheIsConsistent) {
  const auto a = add(proto::exploit_payload(proto::ExploitKind::kGponRce, 2), std::nullopt, 80);
  const auto b = add(proto::exploit_payload(proto::ExploitKind::kGponRce, 2), std::nullopt, 80);
  EXPECT_EQ(classify(a), MeasuredIntent::kMalicious);
  EXPECT_EQ(classify(b), MeasuredIntent::kMalicious);  // served from cache
}

}  // namespace
}  // namespace cw::analysis
