#include "analysis/blocklist.h"

#include <gtest/gtest.h>

#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/payloads.h"

namespace cw::analysis {
namespace {

class BlocklistTest : public ::testing::Test {
 protected:
  BlocklistTest() : engine_(ids::curated_engine()), classifier_(engine_) {
    auto add_vantage = [&](const char* name, const char* country) {
      topology::VantagePoint vp;
      vp.name = name;
      vp.provider = topology::Provider::kAws;
      vp.type = topology::NetworkType::kCloud;
      vp.collection = topology::CollectionMethod::kGreyNoise;
      vp.region = net::make_region(country);
      vp.addresses = {net::IPv4Addr(3, 0, static_cast<std::uint8_t>(deployment_.size()), 1)};
      vp.open_ports = {22, 80};
      deployment_.add(std::move(vp));
    };
    add_vantage("us-a", "US");  // vantage 0
    add_vantage("us-b", "US");  // vantage 1
    add_vantage("sg", "SG");    // vantage 2
    add_vantage("de", "DE");    // vantage 3
  }

  void add(topology::VantageId vantage, std::uint32_t src, bool malicious) {
    capture::SessionRecord record;
    record.vantage = vantage;
    record.port = malicious ? 22 : 80;
    record.src = src;
    if (malicious) {
      store_.append(record, proto::ssh_client_banner(), proto::Credential{"root", "root"});
    } else {
      store_.append(record, proto::http_benign_request(0), std::nullopt);
    }
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
  ids::RuleEngine engine_;
  MaliciousClassifier classifier_;
};

TEST_F(BlocklistTest, SelfEvaluationIsComplete) {
  add(0, 1, true);
  add(0, 2, true);
  add(0, 3, false);
  const auto evaluation = evaluate_blocklist(store_, classifier_, {0}, {0}, "us", "us");
  EXPECT_EQ(evaluation.blocklist_size, 2u);
  EXPECT_EQ(evaluation.target_attacker_ips, 2u);
  EXPECT_DOUBLE_EQ(evaluation.ip_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(evaluation.event_coverage(), 1.0);
}

TEST_F(BlocklistTest, CrossGroupCoverageCountsSharedAttackers) {
  // Attacker 1 hits both regions; attacker 2 only the source; attacker 3
  // only the target.
  add(0, 1, true);
  add(0, 2, true);
  add(2, 1, true);
  add(2, 3, true);
  const auto evaluation = evaluate_blocklist(store_, classifier_, {0}, {2}, "us", "sg");
  EXPECT_EQ(evaluation.blocklist_size, 2u);
  EXPECT_EQ(evaluation.target_attacker_ips, 2u);
  EXPECT_EQ(evaluation.covered_ips, 1u);
  EXPECT_DOUBLE_EQ(evaluation.ip_coverage(), 0.5);
}

TEST_F(BlocklistTest, BenignSourcesNeverEnterTheList) {
  add(0, 7, false);
  add(2, 7, true);
  const auto evaluation = evaluate_blocklist(store_, classifier_, {0}, {2}, "us", "sg");
  EXPECT_EQ(evaluation.blocklist_size, 0u);
  EXPECT_EQ(evaluation.covered_ips, 0u);
  EXPECT_DOUBLE_EQ(evaluation.ip_coverage(), 0.0);
}

TEST_F(BlocklistTest, EventCoverageWeighsVolume) {
  add(0, 1, true);  // listed attacker
  // Target: listed attacker sends 3 malicious events, unlisted sends 1.
  add(2, 1, true);
  add(2, 1, true);
  add(2, 1, true);
  add(2, 9, true);
  const auto evaluation = evaluate_blocklist(store_, classifier_, {0}, {2}, "us", "sg");
  EXPECT_EQ(evaluation.target_malicious_events, 4u);
  EXPECT_EQ(evaluation.blocked_events, 3u);
  EXPECT_DOUBLE_EQ(evaluation.event_coverage(), 0.75);
}

TEST_F(BlocklistTest, EmptyTargetYieldsZeroCoverage) {
  add(0, 1, true);
  const auto evaluation = evaluate_blocklist(store_, classifier_, {0}, {3}, "us", "de");
  EXPECT_DOUBLE_EQ(evaluation.ip_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(evaluation.event_coverage(), 0.0);
}

TEST_F(BlocklistTest, RegionalMatrixCoversAllGroupPairs) {
  add(0, 1, true);
  add(2, 1, true);
  add(3, 2, true);
  const auto matrix = regional_blocklist_matrix(store_, deployment_, classifier_);
  // Groups present: US, AP, EU -> 9 evaluations.
  EXPECT_EQ(matrix.size(), 9u);
  // Diagonal entries are complete by construction.
  for (const auto& evaluation : matrix) {
    if (evaluation.source_group == evaluation.target_group &&
        evaluation.target_attacker_ips > 0) {
      EXPECT_DOUBLE_EQ(evaluation.ip_coverage(), 1.0) << evaluation.source_group;
    }
  }
}

}  // namespace
}  // namespace cw::analysis
