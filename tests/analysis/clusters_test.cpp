#include "analysis/clusters.h"

#include <gtest/gtest.h>

#include "agents/population.h"
#include "core/experiment.h"

namespace cw::analysis {
namespace {

// Hand-built corpus: a deployment with one vantage so SessionFrame::build
// can resolve network types, and records appended straight to the store
// (credential retention gating lives in the Collector, not here).
class ClustersTest : public ::testing::Test {
 protected:
  ClustersTest() {
    topology::VantagePoint vp;
    vp.name = "cloud";
    vp.type = topology::NetworkType::kCloud;
    vp.region = net::make_region("SG");
    vp.addresses = {net::IPv4Addr(3, 0, 0, 1)};
    vp.open_ports = {22, 2323};
    deployment_.add(std::move(vp));
  }

  void add(std::uint32_t src, capture::ActorId actor, net::Port port, util::SimTime time,
           const std::string& payload, const proto::Credential& credential) {
    capture::SessionRecord record;
    record.time = time;
    record.src = src;
    record.actor = actor;
    record.port = port;
    record.vantage = 0;
    store_.append(record, payload, credential);
  }

  // Family A: SSH on 22, one credential, hourly cadence.
  void add_family_a(capture::EventStore& store, int records_per_src = 6) {
    for (std::uint32_t src = 1; src <= 4; ++src) {
      for (int i = 0; i < records_per_src; ++i) {
        capture::SessionRecord record;
        record.time = src * util::kMinute + i * util::kHour;
        record.src = src;
        record.actor = 10;
        record.port = 22;
        store.append(record, "SSH-2.0-libssh2_1.4.3", proto::Credential{"root", "root"});
      }
    }
  }

  // Family B: telnet on 2323, different credential, second-scale cadence.
  void add_family_b(capture::EventStore& store, int records_per_src = 6) {
    for (std::uint32_t src = 11; src <= 14; ++src) {
      for (int i = 0; i < records_per_src; ++i) {
        capture::SessionRecord record;
        record.time = src * util::kMinute + i * 3 * util::kSecond;
        record.src = src;
        record.actor = 20;
        record.port = 2323;
        store.append(record, "telnet-negotiation", proto::Credential{"admin", "admin1234"});
      }
    }
  }

  capture::SessionFrame frame_of(const capture::EventStore& store) const {
    return capture::SessionFrame::build(store, deployment_);
  }

  topology::Deployment deployment_;
  capture::EventStore store_;
};

TEST_F(ClustersTest, TwoDistinctFamiliesSeparatePerfectly) {
  add_family_a(store_);
  add_family_b(store_);
  const capture::SessionFrame frame = frame_of(store_);
  const ClusterResult result = cluster_attackers(frame);
  EXPECT_EQ(result.scores.entities, 8u);
  EXPECT_EQ(result.scores.clusters, 2u);
  EXPECT_EQ(result.scores.truth_actors, 2u);
  EXPECT_DOUBLE_EQ(result.scores.purity, 1.0);
  EXPECT_DOUBLE_EQ(result.scores.ari, 1.0);
  // Sources come back in ascending order; family A shares one cluster id,
  // family B the other.
  ASSERT_EQ(result.sources.size(), 8u);
  EXPECT_EQ(result.sources.front(), 1u);
  EXPECT_EQ(result.assignment[0], result.assignment[3]);
  EXPECT_EQ(result.assignment[4], result.assignment[7]);
  EXPECT_NE(result.assignment[0], result.assignment[4]);
}

TEST_F(ClustersTest, AssignmentsAreDeterministic) {
  add_family_a(store_);
  add_family_b(store_);
  const capture::SessionFrame frame = frame_of(store_);
  const ClusterResult first = cluster_attackers(frame);
  const ClusterResult second = cluster_attackers(frame);
  EXPECT_EQ(first.scores.assignment_fnv, second.scores.assignment_fnv);
  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_NE(first.scores.assignment_fnv, 0u);
}

TEST_F(ClustersTest, MinRecordsFilterDropsThinSources) {
  add_family_a(store_);
  // One extra source with fewer records than the floor.
  for (int i = 0; i < 3; ++i) {
    capture::SessionRecord record;
    record.time = i * util::kHour;
    record.src = 99;
    record.actor = 30;
    record.port = 22;
    store_.append(record, "SSH-2.0-x", proto::Credential{"x", "y"});
  }
  ClusterOptions options;
  options.min_records = 4;
  const ClusterResult result = cluster_attackers(frame_of(store_), options);
  EXPECT_EQ(result.scores.entities, 4u);
  for (const std::uint32_t src : result.sources) EXPECT_NE(src, 99u);
}

TEST_F(ClustersTest, ExcludedActorsDoNotBecomeEntities) {
  add_family_a(store_);
  add_family_b(store_);
  ClusterOptions options;
  options.exclude_actors = {10};
  const ClusterResult result = cluster_attackers(frame_of(store_), options);
  EXPECT_EQ(result.scores.entities, 4u);
  EXPECT_EQ(result.scores.truth_actors, 1u);
  for (const capture::ActorId actor : result.truth) EXPECT_EQ(actor, 20);
}

TEST_F(ClustersTest, SegmentedMatchesCumulative) {
  // Cumulative corpus vs the same records split across two epoch stores;
  // both families straddle the split so per-segment accumulation matters.
  add_family_a(store_, 3);
  add_family_b(store_, 3);
  add_family_a(store_, 3);
  add_family_b(store_, 3);
  const capture::SessionFrame cumulative = frame_of(store_);

  capture::EventStore first_epoch;
  add_family_a(first_epoch, 3);
  add_family_b(first_epoch, 3);
  capture::EventStore second_epoch;
  add_family_a(second_epoch, 3);
  add_family_b(second_epoch, 3);
  const capture::SessionFrame segment_a = frame_of(first_epoch);
  const capture::SessionFrame segment_b = frame_of(second_epoch);

  const ClusterResult whole = cluster_attackers(cumulative);
  const ClusterResult split = cluster_attackers({&segment_a, &segment_b});
  EXPECT_EQ(whole.sources, split.sources);
  EXPECT_EQ(whole.assignment, split.assignment);
  EXPECT_EQ(whole.scores.assignment_fnv, split.scores.assignment_fnv);
  EXPECT_DOUBLE_EQ(whole.scores.purity, split.scores.purity);
  EXPECT_DOUBLE_EQ(whole.scores.ari, split.scores.ari);
}

TEST_F(ClustersTest, EmptyFrameYieldsEmptyResult) {
  const ClusterResult result = cluster_attackers(frame_of(store_));
  EXPECT_EQ(result.scores.entities, 0u);
  EXPECT_EQ(result.scores.clusters, 0u);
  EXPECT_DOUBLE_EQ(result.scores.purity, 0.0);
}

// The acceptance experiment (ISSUE 10): the distinct-fingerprint scan
// families installed by ScenarioKind::kClusterFamilies, no background
// population, must cluster back to actor identity with purity/ARI >= 0.9.
TEST(ClustersAcceptance, GroundTruthFamiliesRecoverActorIdentity) {
  core::ExperimentConfig config;
  config.scale = 0.1;
  config.telescope_slash24s = 8;
  config.adversary.kind = adversary::ScenarioKind::kClusterFamilies;
  config.adversary.replace_population = true;
  const auto result = core::Experiment(config).run();

  ClusterOptions options;
  options.exclude_actors = {agents::Population::kCensysActorId,
                            agents::Population::kShodanActorId};
  const ClusterResult clustered = cluster_attackers(result->frame(), options);
  EXPECT_GE(clustered.scores.entities, 50u);
  EXPECT_EQ(clustered.scores.truth_actors, 8u);
  EXPECT_GE(clustered.scores.purity, 0.9);
  EXPECT_GE(clustered.scores.ari, 0.9);
  // Same frame, same options: the digest proves assignment reproducibility.
  EXPECT_EQ(cluster_attackers(result->frame(), options).scores.assignment_fnv,
            clustered.scores.assignment_fnv);
}

}  // namespace
}  // namespace cw::analysis
