// The SessionFrame refactor's contract: every frame-backed analysis is
// row-for-row and bit-for-bit equivalent to the store-scanning original.
// One small (but real) experiment, each pipeline run both ways, results
// compared exactly — doubles included, since both paths must accumulate in
// the same order.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/campaigns.h"
#include "analysis/characteristics.h"
#include "analysis/geography.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "analysis/overlap.h"
#include "analysis/protocols.h"
#include "analysis/structure.h"
#include "core/experiment.h"
#include "runner/thread_pool.h"

namespace cw::analysis {
namespace {

const core::ExperimentResult& experiment() {
  static const std::unique_ptr<core::ExperimentResult> result = [] {
    core::ExperimentConfig config;
    config.scale = 0.05;
    config.telescope_slash24s = 4;
    config.duration = util::kDay;
    return core::Experiment(config).run();
  }();
  return *result;
}

constexpr TrafficScope kAllScopes[] = {TrafficScope::kSsh22, TrafficScope::kTelnet23,
                                       TrafficScope::kHttp80, TrafficScope::kHttpAllPorts,
                                       TrafficScope::kAnyAll};

class FrameSliceEquivalence : public ::testing::TestWithParam<TrafficScope> {};

TEST_P(FrameSliceEquivalence, InScopeAgreesPerRecord) {
  const auto& result = experiment();
  const capture::SessionFrame& frame = result.frame();
  const capture::EventStore& store = result.store();
  for (std::uint32_t i = 0; i < frame.size(); ++i) {
    ASSERT_EQ(in_scope(store.records()[i], GetParam(), store), in_scope(frame, i, GetParam()))
        << "record " << i;
  }
}

TEST_P(FrameSliceEquivalence, VantageAndNeighborSlicesMatchBothWays) {
  const auto& result = experiment();
  const capture::SessionFrame& frame = result.frame();
  const capture::EventStore& store = result.store();
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    const TrafficSlice from_store = slice_vantage(store, vp.id, GetParam());
    const TrafficSlice from_frame = slice_vantage(frame, vp.id, GetParam());
    // Identical index vectors cover both directions: no row the store scan
    // finds is missing from the posting list, and vice versa.
    ASSERT_EQ(from_store.records, from_frame.records) << vp.name;
    EXPECT_EQ(from_frame.frame, &frame);

    for (std::uint16_t n = 0; n < vp.addresses.size(); ++n) {
      ASSERT_EQ(slice_neighbor(store, vp.id, n, GetParam()).records,
                slice_neighbor(frame, vp.id, n, GetParam()).records)
          << vp.name << " neighbor " << n;
    }
    // malicious_counts reads the verdict column on the frame path.
    EXPECT_EQ(malicious_counts(from_store, result.classifier()),
              malicious_counts(from_frame, result.classifier()));
  }
}

TEST_P(FrameSliceEquivalence, NeighborhoodSummariesMatch) {
  const auto& result = experiment();
  for (const Characteristic characteristic : characteristics_for_scope(GetParam())) {
    const NeighborhoodSummary a = analyze_neighborhoods(
        result.store(), result.deployment(), GetParam(), characteristic, result.classifier());
    const NeighborhoodSummary b =
        analyze_neighborhoods(result.frame(), GetParam(), characteristic, result.classifier());
    EXPECT_EQ(a.neighborhoods_tested, b.neighborhoods_tested);
    EXPECT_EQ(a.neighborhoods_different, b.neighborhoods_different);
    EXPECT_EQ(a.pct_different, b.pct_different);
    EXPECT_EQ(a.avg_phi, b.avg_phi);
    EXPECT_EQ(a.typical_magnitude, b.typical_magnitude);
  }
}

TEST_P(FrameSliceEquivalence, GeoSimilarityMatches) {
  const auto& result = experiment();
  for (const Characteristic characteristic : characteristics_for_scope(GetParam())) {
    const GeoSimilarity a = geo_similarity(result.store(), result.deployment(), GetParam(),
                                           characteristic, result.classifier());
    const GeoSimilarity b =
        geo_similarity(result.frame(), GetParam(), characteristic, result.classifier());
    EXPECT_EQ(a.tested, b.tested);
    EXPECT_EQ(a.similar, b.similar);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScopes, FrameSliceEquivalence, ::testing::ValuesIn(kAllScopes),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case TrafficScope::kSsh22: return "Ssh22";
                             case TrafficScope::kTelnet23: return "Telnet23";
                             case TrafficScope::kHttp80: return "Http80";
                             case TrafficScope::kHttpAllPorts: return "HttpAllPorts";
                             case TrafficScope::kAnyAll: return "AnyAll";
                           }
                           return "Unknown";
                         });

TEST(FrameEquivalence, ScannerOverlapMatches) {
  const auto& result = experiment();
  const auto a = scanner_overlap(result.store(), result.deployment(), net::popular_ports());
  const auto b = scanner_overlap(result.frame(), net::popular_ports());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_EQ(a[i].cloud_ips, b[i].cloud_ips);
    EXPECT_EQ(a[i].edu_ips, b[i].edu_ips);
    EXPECT_EQ(a[i].telescope_ips, b[i].telescope_ips);
    EXPECT_EQ(a[i].tel_cloud_over_cloud, b[i].tel_cloud_over_cloud);
    EXPECT_EQ(a[i].tel_edu_over_edu, b[i].tel_edu_over_edu);
    EXPECT_EQ(a[i].cloud_edu_over_cloud, b[i].cloud_edu_over_cloud);
  }
}

TEST(FrameEquivalence, AttackerOverlapMatches) {
  const auto& result = experiment();
  const std::vector<net::Port> ports = {23, 2323, 80, 8080, 2222, 22};
  const auto a = attacker_overlap(result.store(), result.deployment(), result.classifier(), ports);
  const auto b = attacker_overlap(result.frame(), ports);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_EQ(a[i].malicious_cloud_ips, b[i].malicious_cloud_ips);
    EXPECT_EQ(a[i].malicious_edu_ips, b[i].malicious_edu_ips);
    EXPECT_EQ(a[i].tel_over_malicious_cloud, b[i].tel_over_malicious_cloud);
    EXPECT_EQ(a[i].tel_over_malicious_edu, b[i].tel_over_malicious_edu);
  }
}

TEST(FrameEquivalence, ProtocolBreakdownMatches) {
  const auto& result = experiment();
  ProtocolOptions options;
  options.oracle = &result.oracle();
  const auto a = protocol_breakdown(result.store(), result.deployment(), options);
  const auto b = protocol_breakdown(result.frame(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_EQ(a[i].scanners_total, b[i].scanners_total);
    EXPECT_EQ(a[i].scanners_expected, b[i].scanners_expected);
    EXPECT_EQ(a[i].pct_expected, b[i].pct_expected);
    EXPECT_EQ(a[i].pct_unexpected, b[i].pct_unexpected);
    EXPECT_EQ(a[i].expected_benign_pct, b[i].expected_benign_pct);
    EXPECT_EQ(a[i].expected_malicious_pct, b[i].expected_malicious_pct);
    EXPECT_EQ(a[i].unexpected_benign_pct, b[i].unexpected_benign_pct);
    EXPECT_EQ(a[i].unexpected_malicious_pct, b[i].unexpected_malicious_pct);
    ASSERT_EQ(a[i].unexpected_shares.size(), b[i].unexpected_shares.size());
    for (std::size_t s = 0; s < a[i].unexpected_shares.size(); ++s) {
      EXPECT_EQ(a[i].unexpected_shares[s].protocol, b[i].unexpected_shares[s].protocol);
      EXPECT_EQ(a[i].unexpected_shares[s].scanners, b[i].unexpected_shares[s].scanners);
      EXPECT_EQ(a[i].unexpected_shares[s].pct_of_port, b[i].unexpected_shares[s].pct_of_port);
    }
  }
}

TEST(FrameEquivalence, CompareVantagePairsMatchesSequentialAndSharded) {
  const auto& result = experiment();
  runner::ThreadPool pool(4);
  for (const auto& pairs : {telescope_cloud_pairs(result.deployment()),
                            telescope_edu_pairs(result.deployment()),
                            cloud_cloud_pairs(result.deployment())}) {
    for (const TrafficScope scope : kAllScopes) {
      const NetworkComparison a =
          compare_vantage_pairs(result.store(), result.deployment(), pairs, scope,
                                Characteristic::kTopAs, result.classifier());
      const NetworkComparison b = compare_vantage_pairs(
          result.frame(), pairs, scope, Characteristic::kTopAs, result.classifier());
      const NetworkComparison c =
          compare_vantage_pairs(result.frame(), pairs, scope, Characteristic::kTopAs,
                                result.classifier(), NetworkOptions{}, &pool);
      for (const NetworkComparison* other : {&b, &c}) {
        EXPECT_EQ(a.measurable, other->measurable);
        EXPECT_EQ(a.pairs_tested, other->pairs_tested);
        EXPECT_EQ(a.pairs_different, other->pairs_different);
        EXPECT_EQ(a.avg_phi, other->avg_phi);
        EXPECT_EQ(a.strongest, other->strongest);
      }
    }
  }
}

TEST(FrameEquivalence, CampaignInferenceMatches) {
  const auto& result = experiment();
  const auto a = infer_campaigns(result.store());
  const auto b = infer_campaigns(result.frame());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].signature, b[i].signature);
    EXPECT_EQ(a[i].sources, b[i].sources);
    EXPECT_EQ(a[i].events, b[i].events);
    EXPECT_EQ(a[i].first_seen, b[i].first_seen);
    EXPECT_EQ(a[i].last_seen, b[i].last_seen);
    EXPECT_EQ(a[i].dominant_port, b[i].dominant_port);
  }
  const CampaignValidation va = validate_campaigns(result.store(), a);
  const CampaignValidation vb = validate_campaigns(result.frame(), b);
  EXPECT_EQ(va.inferred, vb.inferred);
  EXPECT_EQ(va.pure, vb.pure);
  EXPECT_EQ(va.true_campaigns, vb.true_campaigns);
  EXPECT_EQ(va.recovered, vb.recovered);
}

TEST(FrameEquivalence, TelescopeAddressCountsMatch) {
  const auto& result = experiment();
  for (const net::Port port : {net::Port{23}, net::Port{80}}) {
    EXPECT_EQ(telescope_address_counts(result.store(), result.deployment(), port),
              telescope_address_counts(result.frame(), port));
  }
}

TEST(FrameEquivalence, MostDifferentRegionMatches) {
  const auto& result = experiment();
  for (const topology::Provider provider :
       {topology::Provider::kAws, topology::Provider::kGoogle, topology::Provider::kLinode}) {
    const MostDifferentRegion a =
        most_different_region(result.store(), result.deployment(), provider,
                              TrafficScope::kSsh22, Characteristic::kTopAs, result.classifier());
    const MostDifferentRegion b = most_different_region(
        result.frame(), provider, TrafficScope::kSsh22, Characteristic::kTopAs,
        result.classifier());
    EXPECT_EQ(a.any_significant, b.any_significant);
    EXPECT_EQ(a.region_code, b.region_code);
    EXPECT_EQ(a.avg_phi, b.avg_phi);
    EXPECT_EQ(a.magnitude, b.magnitude);
    EXPECT_EQ(a.significant_pairs, b.significant_pairs);
  }
}

TEST(FrameEquivalence, VerdictColumnMatchesClassifier) {
  const auto& result = experiment();
  const capture::SessionFrame& frame = result.frame();
  ASSERT_TRUE(frame.has_verdicts());
  for (std::uint32_t i = 0; i < frame.size(); ++i) {
    const MeasuredIntent intent =
        result.classifier().classify(result.store().records()[i], result.store());
    const capture::SessionFrame::Verdict expected =
        intent == MeasuredIntent::kMalicious  ? capture::SessionFrame::Verdict::kMalicious
        : intent == MeasuredIntent::kBenign   ? capture::SessionFrame::Verdict::kBenign
                                              : capture::SessionFrame::Verdict::kUnobservable;
    ASSERT_EQ(frame.verdict(i), expected) << "record " << i;
  }
}

}  // namespace
}  // namespace cw::analysis
