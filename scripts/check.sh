#!/usr/bin/env bash
# Tier-1 verification gate plus the sanitizer configs, runnable locally and
# from CI (.github/workflows/ci.yml calls each stage).
#
#   scripts/check.sh            # tier-1: configure + build + ctest
#   scripts/check.sh asan       # -DCW_SANITIZE=address,undefined build + ctest
#   scripts/check.sh tsan       # -DCW_SANITIZE=thread build + concurrency suites
#   scripts/check.sh determinism# full_report byte-identical at --jobs 1/2/8
#   scripts/check.sh stream     # live_report == full_report at several epoch
#                               # slicings/shard counts/worker counts (+ golden md5)
#   scripts/check.sh serve      # cloudwatch_cli serve: curl per-epoch tables, diff
#                               # against the batch render (+ golden md5), 503 shed
#   scripts/check.sh bench      # frame-vs-full-scan numbers (bench_runner_pipelines)
#   scripts/check.sh fleet      # sweep campaigns byte-identical at --jobs 1/2/8,
#                               # in-fleet cell == standalone --cell rerun
#   scripts/check.sh adversary  # adaptive/colocation/clustering presets at small
#                               # scale: byte-identical at --jobs 1/8, standalone
#                               # --cell == in-fleet, clustering scores in md+json
#   scripts/check.sh stress     # opt-in: 1000-engine stress campaign — completes
#                               # under a deadline, bounded memory, byte-identical
#                               # sweep report at --jobs 2 vs 8
#   scripts/check.sh coldstore  # out-of-core tiering: spilled live report grid
#                               # byte-identical to batch (+ golden md5) at
#                               # --hot-segments 0/1/all x --jobs 1/8, and a
#                               # campaign that dies under `ulimit -v` resident
#                               # completes under the same cap with --spill-dir,
#                               # byte-identical to the uncapped render
#   scripts/check.sh all        # tier-1 + asan + tsan + determinism + stream + serve
#                               # + fleet + adversary + coldstore (stress stays
#                               # opt-in: run it explicitly)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${CW_CHECK_JOBS:-$(nproc)}"

tier1() {
  cmake -B "$ROOT/build" -S "$ROOT"
  cmake --build "$ROOT/build" -j "$JOBS"
  ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"
}

asan() {
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DCW_SANITIZE=address,undefined
  cmake --build "$ROOT/build-asan" -j "$JOBS"
  ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"
}

tsan() {
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DCW_SANITIZE=thread
  # The concurrency surface: the pool, the runner, the capture layer (store
  # freeze/pin + SessionFrame sharded builds), and the stream ingest path
  # (multi-producer shard buffers racing a snapshot reader), and the report
  # server (handler pool + acceptor + concurrent readers racing sealers).
  # Building everything under TSan is slow; these binaries cover every thread
  # we spawn. Run them directly: gtest_discover_tests registers per-case
  # names, so a ctest -R on binary names silently matches nothing.
  cmake --build "$ROOT/build-tsan" -j "$JOBS" \
    --target cw_runner_test cw_capture_test cw_analysis_test cw_stream_test cw_serve_test
  local binary
  for binary in cw_runner_test cw_capture_test cw_analysis_test cw_stream_test cw_serve_test; do
    "$ROOT/build-tsan/tests/$binary"
  done
}

determinism() {
  # The report must be byte-identical at every worker count (the frame
  # build, the characteristic-table cache, and all 17 pipelines shard
  # through the pool) — and, at the reference scale, identical to the
  # recorded golden hash, so a refactor that shifts any output byte (even
  # deterministically) fails here instead of landing unnoticed.
  cmake --build "$ROOT/build" -j "$JOBS" --target full_report
  local bin="$ROOT/build/examples/full_report"
  [ -x "$bin" ] || bin="$ROOT/build/full_report"
  local scale="${CW_CHECK_SCALE:-0.3}" t24="${CW_CHECK_T24:-16}"
  local golden="${CW_CHECK_GOLDEN_MD5:-06bc684b63b54af2709cec936ccc1153}"
  local out1 out2 out8
  out1=$(mktemp) && out2=$(mktemp) && out8=$(mktemp)
  "$bin" --jobs 1 "$scale" "$t24" >"$out1" 2>/dev/null
  "$bin" --jobs 2 "$scale" "$t24" >"$out2" 2>/dev/null
  "$bin" --jobs 8 "$scale" "$t24" >"$out8" 2>/dev/null
  diff -q "$out1" "$out2" && diff -q "$out1" "$out8"
  if [ "$scale" = "0.3" ] && [ "$t24" = "16" ] && [ -n "$golden" ]; then
    local md5
    md5=$(md5sum "$out1" | cut -d' ' -f1)
    if [ "$md5" != "$golden" ]; then
      echo "determinism: stdout md5 $md5 != golden $golden (scale 0.3, t24 16)" >&2
      rm -f "$out1" "$out2" "$out8"
      return 1
    fi
    echo "determinism: stdout md5 matches golden $golden"
  fi
  rm -f "$out1" "$out2" "$out8"
  echo "determinism: byte-identical at --jobs 1/2/8 (scale $scale, t24 $t24)"
}

stream() {
  # The live-ingest invariant: after the final epoch, the incrementally
  # maintained report is byte-identical to the one-shot batch report — at
  # any epoch slicing, shard count, and worker count. At the reference
  # scale the live output must also reproduce the recorded golden hash, so
  # the streaming path cannot drift from the batch path unnoticed.
  cmake --build "$ROOT/build" -j "$JOBS" --target full_report live_report cw_stream_test
  "$ROOT/build/tests/cw_stream_test"
  local batch="$ROOT/build/examples/full_report"
  [ -x "$batch" ] || batch="$ROOT/build/full_report"
  local live="$ROOT/build/examples/live_report"
  [ -x "$live" ] || live="$ROOT/build/live_report"
  local scale="${CW_CHECK_SCALE:-0.3}" t24="${CW_CHECK_T24:-16}"
  local golden="${CW_CHECK_GOLDEN_MD5:-06bc684b63b54af2709cec936ccc1153}"
  local batch_out live_out
  batch_out=$(mktemp) && live_out=$(mktemp)
  "$batch" --jobs 1 "$scale" "$t24" >"$batch_out" 2>/dev/null
  local spec epochs shards jobs
  for spec in "1 1 1" "3 4 2" "5 16 8"; do
    read -r epochs shards jobs <<<"$spec"
    "$live" --final-only --epochs "$epochs" --shards "$shards" --jobs "$jobs" \
      "$scale" "$t24" >"$live_out" 2>/dev/null
    if ! diff -q "$batch_out" "$live_out"; then
      echo "stream: live report diverged from batch at $epochs epochs, $shards shards, --jobs $jobs" >&2
      rm -f "$batch_out" "$live_out"
      return 1
    fi
  done
  if [ "$scale" = "0.3" ] && [ "$t24" = "16" ] && [ -n "$golden" ]; then
    local md5
    md5=$(md5sum "$live_out" | cut -d' ' -f1)
    if [ "$md5" != "$golden" ]; then
      echo "stream: live stdout md5 $md5 != golden $golden (scale 0.3, t24 16)" >&2
      rm -f "$batch_out" "$live_out"
      return 1
    fi
    echo "stream: live stdout md5 matches golden $golden"
  fi
  rm -f "$batch_out" "$live_out"
  echo "stream: live == batch at epochs/shards/jobs 1/1/1, 3/4/2, 5/16/8 (scale $scale, t24 $t24)"
}

serve() {
  # The serve contract: every byte a reader pulls from stream::ReportServer
  # is the batch render of the same corpus — /epoch/<final>/report over HTTP
  # diffs clean against full_report stdout (and reproduces the golden md5 at
  # the reference scale) — and overload is shed with 503 + Retry-After
  # instead of queueing without bound.
  cmake --build "$ROOT/build" -j "$JOBS" --target cloudwatch_cli full_report cw_serve_test
  "$ROOT/build/tests/cw_serve_test"
  local cli="$ROOT/build/examples/cloudwatch_cli"
  [ -x "$cli" ] || cli="$ROOT/build/cloudwatch_cli"
  local batch="$ROOT/build/examples/full_report"
  [ -x "$batch" ] || batch="$ROOT/build/full_report"
  local scale="${CW_CHECK_SCALE:-0.3}" t24="${CW_CHECK_T24:-16}" epochs=3
  local golden="${CW_CHECK_GOLDEN_MD5:-06bc684b63b54af2709cec936ccc1153}"
  local work
  work=$(mktemp -d)
  "$batch" --jobs 1 "$scale" "$t24" >"$work/batch.md" 2>/dev/null
  "$cli" serve --scale "$scale" --t24 "$t24" --epochs "$epochs" --shards 4 \
    --max-conn 8 --port-file "$work/port" --linger 300 2>"$work/serve.log" &
  local server_pid=$!
  # shellcheck disable=SC2064
  trap "kill $server_pid 2>/dev/null; wait $server_pid 2>/dev/null" RETURN
  local port="" i
  for i in $(seq 1 120); do
    [ -s "$work/port" ] && { port=$(cat "$work/port"); break; }
    sleep 0.5
  done
  if [ -z "$port" ]; then
    echo "serve: server never wrote its port file" >&2
    rm -rf "$work"
    return 1
  fi
  # Wait for the final epoch to publish, then pull its full report.
  local ready=""
  for i in $(seq 1 1200); do
    if curl -sf "http://127.0.0.1:$port/epochs" 2>/dev/null | grep -q "\"latest\":$epochs"; then
      ready=1
      break
    fi
    sleep 0.5
  done
  if [ -z "$ready" ]; then
    echo "serve: final epoch never published (see $work/serve.log)" >&2
    return 1
  fi
  curl -sf "http://127.0.0.1:$port/epoch/$epochs/report" >"$work/served.md"
  if ! diff -q "$work/batch.md" "$work/served.md"; then
    echo "serve: served /epoch/$epochs/report diverged from batch full_report" >&2
    return 1
  fi
  if [ "$scale" = "0.3" ] && [ "$t24" = "16" ] && [ -n "$golden" ]; then
    local md5
    md5=$(md5sum "$work/served.md" | cut -d' ' -f1)
    if [ "$md5" != "$golden" ]; then
      echo "serve: served report md5 $md5 != golden $golden (scale 0.3, t24 16)" >&2
      return 1
    fi
    echo "serve: served report md5 matches golden $golden"
  fi
  # Spot-check the table and findings routes.
  curl -sf "http://127.0.0.1:$port/epoch/$epochs/table/table-1-vantage-points" \
    >"$work/table1.md"
  if ! grep -qF "$(head -1 "$work/table1.md")" "$work/batch.md"; then
    echo "serve: table route body not found in the batch render" >&2
    return 1
  fi
  if ! curl -sf "http://127.0.0.1:$port/epoch/$epochs/findings" | grep -q '"findings":\['; then
    echo "serve: findings route missing or malformed" >&2
    return 1
  fi
  # Overload path: hold --max-conn idle connections, expect an immediate 503
  # with Retry-After; release them, expect recovery to 200.
  local fd
  for fd in $(seq 3 10); do
    eval "exec $fd<>/dev/tcp/127.0.0.1/$port"
  done
  sleep 0.3
  local shed
  shed=$(curl -s --max-time 5 -D - -o /dev/null "http://127.0.0.1:$port/healthz" || true)
  for fd in $(seq 3 10); do
    eval "exec $fd<&-" && eval "exec $fd>&-"
  done
  if ! grep -q "^HTTP/1.1 503" <<<"$shed" || ! grep -qi "^Retry-After:" <<<"$shed"; then
    echo "serve: expected 503 + Retry-After at connection capacity, got:" >&2
    echo "$shed" >&2
    return 1
  fi
  local recovered=""
  for i in $(seq 1 60); do
    if [ "$(curl -s --max-time 5 -o /dev/null -w '%{http_code}' \
            "http://127.0.0.1:$port/healthz" || true)" = "200" ]; then
      recovered=1
      break
    fi
    sleep 0.5
  done
  if [ -z "$recovered" ]; then
    echo "serve: server never recovered after overload connections closed" >&2
    return 1
  fi
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  trap - RETURN
  rm -rf "$work"
  echo "serve: served epochs byte-identical to batch; 503 shed + recovery verified (scale $scale, t24 $t24)"
}

bench() {
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_runner_pipelines bench_frame_kernels
  local bin="$ROOT/build/bench/bench_runner_pipelines"
  [ -x "$bin" ] || bin="$ROOT/build/bench_runner_pipelines"
  CW_SCALE="${CW_SCALE:-0.5}" CW_T24="${CW_T24:-16}" CW_JOBS="${CW_JOBS:-1}" \
    "$bin" --benchmark_filter='bm_frame_build|bm_table(8|9|10)_(fullscan|frame)' \
           --benchmark_min_time=0.5
  # The SessionFrame v2 kernels: encoded vs v1 table builds, packed posting
  # iteration, cold vs warm epoch seal.
  local kernels="$ROOT/build/bench/bench_frame_kernels"
  [ -x "$kernels" ] || kernels="$ROOT/build/bench_frame_kernels"
  CW_SCALE="${CW_SCALE:-0.5}" CW_T24="${CW_T24:-16}" CW_JOBS="${CW_JOBS:-1}" \
    "$kernels" --benchmark_min_time=0.5
  # The report server under mixed (live run racing readers) and cached load.
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_serve
  local serve_bin="$ROOT/build/bench/bench_serve"
  [ -x "$serve_bin" ] || serve_bin="$ROOT/build/bench_serve"
  CW_SCALE="${CW_SCALE:-0.1}" CW_T24="${CW_T24:-4}" "$serve_bin"
}

fleet() {
  # The Fleet determinism contract: a campaign's sweep report (and every
  # per-cell file) is byte-identical at any worker count, and any single
  # cell rerun standalone (--cell) reproduces its in-fleet per-cell file
  # byte-for-byte — cell seeds derive from (campaign seed, sim label), never
  # from scheduling position.
  cmake --build "$ROOT/build" -j "$JOBS" --target cloudwatch_cli
  local cli="$ROOT/build/examples/cloudwatch_cli"
  [ -x "$cli" ] || cli="$ROOT/build/cloudwatch_cli"
  local scale="${CW_CHECK_FLEET_SCALE:-0.15}" t24="${CW_CHECK_FLEET_T24:-8}"
  local work campaign jobs
  work=$(mktemp -d)
  for campaign in ablation calibration; do
    for jobs in 1 2 8; do
      "$cli" sweep "$campaign" --scale "$scale" --t24 "$t24" --jobs "$jobs" \
        --cells-dir "$work/$campaign-j$jobs" >"$work/$campaign-j$jobs.md" 2>/dev/null
    done
    for jobs in 2 8; do
      if ! diff -q "$work/$campaign-j1.md" "$work/$campaign-j$jobs.md" ||
         ! diff -rq "$work/$campaign-j1" "$work/$campaign-j$jobs"; then
        echo "fleet: $campaign sweep diverged between --jobs 1 and --jobs $jobs" >&2
        rm -rf "$work"
        return 1
      fi
    done
  done
  # Standalone rerun of one cell from each campaign vs its in-fleet file.
  "$cli" sweep ablation --scale "$scale" --t24 "$t24" --jobs 1 \
    --cell "k5-bonf" >"$work/solo-ablation.md" 2>/dev/null
  "$cli" sweep calibration --scale "$scale" --t24 "$t24" --jobs 1 \
    --cell "beta/x0.60" >"$work/solo-calibration.md" 2>/dev/null
  if ! diff -q "$work/solo-ablation.md" "$work/ablation-j1/k5-bonf.md" ||
     ! diff -q "$work/solo-calibration.md" "$work/calibration-j1/beta_x0.60.md"; then
    echo "fleet: standalone --cell rerun diverged from in-fleet per-cell file" >&2
    rm -rf "$work"
    return 1
  fi
  rm -rf "$work"
  echo "fleet: sweeps byte-identical at --jobs 1/2/8; standalone cells match in-fleet (scale $scale, t24 $t24)"
}

adversary() {
  # The adversarial-scenario presets (DESIGN.md §8): the three grids run at
  # small scale, the sweep reports (and every per-cell file) are
  # byte-identical at --jobs 1 vs 8, a standalone --cell rerun reproduces
  # its in-fleet bytes, --list names every preset, and the JSON rendering
  # carries the clustering scores.
  cmake --build "$ROOT/build" -j "$JOBS" --target cloudwatch_cli
  local cli="$ROOT/build/examples/cloudwatch_cli"
  [ -x "$cli" ] || cli="$ROOT/build/cloudwatch_cli"
  local scale="${CW_CHECK_ADV_SCALE:-0.1}" t24="${CW_CHECK_ADV_T24:-8}"
  local work campaign jobs
  work=$(mktemp -d)
  for campaign in adaptive colocation clustering; do
    if ! "$cli" sweep --list | grep -q "^$campaign "; then
      echo "adversary: sweep --list does not name the $campaign preset" >&2
      rm -rf "$work"
      return 1
    fi
    for jobs in 1 8; do
      "$cli" sweep "$campaign" --scale "$scale" --t24 "$t24" --jobs "$jobs" \
        --cells-dir "$work/$campaign-j$jobs" >"$work/$campaign-j$jobs.md" 2>/dev/null
    done
    if ! diff -q "$work/$campaign-j1.md" "$work/$campaign-j8.md" ||
       ! diff -rq "$work/$campaign-j1" "$work/$campaign-j8"; then
      echo "adversary: $campaign sweep diverged between --jobs 1 and --jobs 8" >&2
      rm -rf "$work"
      return 1
    fi
  done
  # Standalone rerun of the clustering acceptance cell vs its in-fleet file.
  "$cli" sweep clustering --scale "$scale" --t24 "$t24" --jobs 1 \
    --cell "families" >"$work/solo-families.md" 2>/dev/null
  if ! diff -q "$work/solo-families.md" "$work/clustering-j1/families.md"; then
    echo "adversary: standalone --cell families diverged from in-fleet per-cell file" >&2
    rm -rf "$work"
    return 1
  fi
  # The acceptance cell scores purity/ARI 1.0000 at any checked scale, and
  # the JSON rendering must carry the cluster scores for CI artifacts.
  if ! grep -q "purity 1.0000, ARI 1.0000" "$work/clustering-j1/families.md"; then
    echo "adversary: families cell lost its purity/ARI 1.0 clustering score" >&2
    rm -rf "$work"
    return 1
  fi
  "$cli" sweep clustering --scale "$scale" --t24 "$t24" --jobs 8 \
    --format json >"$work/clustering.json" 2>/dev/null
  if ! grep -q '"purity":' "$work/clustering.json" ||
     ! grep -q '"assignment_fnv":' "$work/clustering.json"; then
    echo "adversary: sweep --format json is missing the cluster scores" >&2
    rm -rf "$work"
    return 1
  fi
  rm -rf "$work"
  echo "adversary: presets byte-identical at --jobs 1/8; standalone cell matches in-fleet;" \
       "clustering scores present in markdown and JSON (scale $scale, t24 $t24)"
}

stress() {
  # Fleet harness at width: CW_CHECK_STRESS_CELLS independent engines (default
  # 1000) through one pool. Passes when (a) both sweeps finish inside the
  # deadline — a scheduling deadlock or a group that never releases the pool
  # trips `timeout`; (b) memory stays under the cap — per-group teardown
  # must keep the high-water at the concurrent group set, not the whole
  # campaign; (c) the sweep reports at --jobs 2 and --jobs 8 are
  # byte-identical.
  cmake --build "$ROOT/build" -j "$JOBS" --target cloudwatch_cli
  local cli="$ROOT/build/examples/cloudwatch_cli"
  [ -x "$cli" ] || cli="$ROOT/build/cloudwatch_cli"
  local cells="${CW_CHECK_STRESS_CELLS:-1000}"
  local scale="${CW_CHECK_STRESS_SCALE:-0.02}" t24="${CW_CHECK_STRESS_T24:-1}"
  local deadline="${CW_CHECK_STRESS_DEADLINE:-900}"   # seconds per sweep
  local mem_limit_kb="${CW_CHECK_STRESS_MEM_KB:-2097152}"  # 2 GiB address space
  local work jobs
  work=$(mktemp -d)
  for jobs in 2 8; do
    # ulimit -v caps the address space: a fleet whose memory high-water
    # tracks the campaign instead of the concurrent group set dies on a
    # failed allocation here rather than passing on a big machine.
    if ! timeout "$deadline" bash -c "ulimit -v $mem_limit_kb; exec \"$cli\" \
        sweep stress --cells $cells --scale $scale --t24 $t24 \
        --jobs $jobs" >"$work/stress-j$jobs.md" 2>/dev/null; then
      echo "stress: sweep --jobs $jobs failed, exceeded ${deadline}s (deadlock?)," \
           "or blew the ${mem_limit_kb}kB memory cap" >&2
      rm -rf "$work"
      return 1
    fi
  done
  if ! diff -q "$work/stress-j2.md" "$work/stress-j8.md"; then
    echo "stress: sweep report diverged between --jobs 2 and --jobs 8" >&2
    rm -rf "$work"
    return 1
  fi
  rm -rf "$work"
  echo "stress: $cells engines byte-identical at --jobs 2/8, memory bounded (scale $scale, t24 $t24)"
}

coldstore() {
  # The out-of-core contract, end to end. Two halves:
  #
  # (a) Byte-identity grid: a spilled live report — segments beyond the hot
  #     set demoted to mmap-backed cold files — renders exactly the batch
  #     bytes at every hot-set size and worker count, and reproduces the
  #     recorded golden hash at the reference scale. Tiering must be
  #     invisible in the output or it fails here.
  # (b) Memory high-water: a sweep cell whose resident footprint exceeds a
  #     hard `ulimit -v` cap must die resident and complete under the same
  #     cap with --spill-dir — byte-identical to the uncapped resident
  #     render. Cold segments must genuinely leave the address space
  #     (munmap, not madvise) for this to pass.
  cmake --build "$ROOT/build" -j "$JOBS" --target full_report live_report cloudwatch_cli
  local batch="$ROOT/build/examples/full_report"
  [ -x "$batch" ] || batch="$ROOT/build/full_report"
  local live="$ROOT/build/examples/live_report"
  [ -x "$live" ] || live="$ROOT/build/live_report"
  local cli="$ROOT/build/examples/cloudwatch_cli"
  [ -x "$cli" ] || cli="$ROOT/build/cloudwatch_cli"
  local scale="${CW_CHECK_SCALE:-0.3}" t24="${CW_CHECK_T24:-16}"
  local golden="${CW_CHECK_GOLDEN_MD5:-06bc684b63b54af2709cec936ccc1153}"
  local work
  work=$(mktemp -d)
  "$batch" --jobs 1 "$scale" "$t24" >"$work/batch.md" 2>/dev/null

  local hot jobs
  for hot in 0 1 all; do
    for jobs in 1 8; do
      rm -rf "$work/spill"
      "$live" --final-only --epochs 4 --shards 4 --jobs "$jobs" \
        --spill-dir "$work/spill" --hot-segments "$hot" "$scale" "$t24" \
        >"$work/live.md" 2>/dev/null
      if ! diff -q "$work/batch.md" "$work/live.md"; then
        echo "coldstore: spilled live report diverged from batch at" \
             "--hot-segments $hot --jobs $jobs" >&2
        rm -rf "$work"
        return 1
      fi
    done
  done
  if [ "$scale" = "0.3" ] && [ "$t24" = "16" ] && [ -n "$golden" ]; then
    local md5
    md5=$(md5sum "$work/live.md" | cut -d' ' -f1)
    if [ "$md5" != "$golden" ]; then
      echo "coldstore: spilled stdout md5 $md5 != golden $golden (scale 0.3, t24 16)" >&2
      rm -rf "$work"
      return 1
    fi
    echo "coldstore: spilled stdout md5 matches golden $golden"
  fi
  echo "coldstore: spilled live == batch at --hot-segments 0/1/all x --jobs 1/8 (scale $scale, t24 $t24)"

  # (b) The cap demonstration. At the default configuration the resident
  # cell peaks ~1.5 GiB of address space and the spilled run ~0.65 GiB
  # (measured on the reference container), so the 1 GiB cap cleanly
  # separates them on both sides.
  local cap_kb="${CW_CHECK_COLD_MEM_KB:-1048576}"
  local cap_scale="${CW_CHECK_COLD_SCALE:-4.5}" cap_t24="${CW_CHECK_COLD_T24:-16}"
  local cap_cell="${CW_CHECK_COLD_CELL:-beta/x0.60}"
  local cap_epochs="${CW_CHECK_COLD_EPOCHS:-12}"
  "$cli" sweep calibration --cell "$cap_cell" --scale "$cap_scale" --t24 "$cap_t24" \
    --jobs 2 >"$work/uncapped.md" 2>/dev/null
  # Subshell so the expected SIGABRT's job-control notice stays quiet.
  if (bash -c "ulimit -v $cap_kb; exec \"$cli\" sweep calibration --cell \"$cap_cell\" \
      --scale $cap_scale --t24 $cap_t24 --jobs 2" >/dev/null 2>&1) 2>/dev/null; then
    echo "coldstore: resident cell fit under the ${cap_kb}kB cap —" \
         "raise CW_CHECK_COLD_SCALE so the cap demonstration discriminates" >&2
    rm -rf "$work"
    return 1
  fi
  rm -rf "$work/spill"
  if ! bash -c "ulimit -v $cap_kb; exec \"$cli\" sweep calibration --cell \"$cap_cell\" \
      --scale $cap_scale --t24 $cap_t24 --jobs 2 --spill-dir \"$work/spill\" \
      --hot-segments 1 --epochs $cap_epochs --shards 4" >"$work/capped.md" 2>/dev/null; then
    echo "coldstore: spilled cell still blew the ${cap_kb}kB cap" >&2
    rm -rf "$work"
    return 1
  fi
  if ! diff -q "$work/uncapped.md" "$work/capped.md"; then
    echo "coldstore: capped spilled render diverged from the uncapped resident render" >&2
    rm -rf "$work"
    return 1
  fi
  rm -rf "$work"
  echo "coldstore: resident dies at ${cap_kb}kB, spilled completes byte-identical" \
       "(cell $cap_cell, scale $cap_scale, t24 $cap_t24)"
}

case "${1:-tier1}" in
  tier1) tier1 ;;
  asan) asan ;;
  tsan) tsan ;;
  determinism) determinism ;;
  stream) stream ;;
  serve) serve ;;
  bench) bench ;;
  fleet) fleet ;;
  adversary) adversary ;;
  stress) stress ;;
  coldstore) coldstore ;;
  all) tier1; asan; tsan; determinism; stream; serve; fleet; adversary; coldstore ;;
  *) echo "usage: scripts/check.sh [tier1|asan|tsan|determinism|stream|serve|bench|fleet|adversary|stress|coldstore|all]" >&2; exit 2 ;;
esac
