// Geographic study: how attackers discriminate between regions (Section 5.1)
// — run the experiment, then drill into the Asia-Pacific divergence and the
// specific regional behaviors the paper names (AWS Australia's Huawei
// credentials, the Mumbai-only HTTP POST campaign).
//
//   ./geo_study [scale]
#include <cstdio>
#include <cstdlib>

#include "analysis/characteristics.h"
#include "analysis/geography.h"
#include "core/experiment.h"
#include "core/tables.h"

int main(int argc, char** argv) {
  cw::core::ExperimentConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  config.telescope_slash24s = 8;

  std::printf("running one simulated week across 23 countries...\n\n");
  const auto result = cw::core::Experiment(config).run();

  std::printf("=== Table 4: most-different regions per provider ===\n%s\n",
              cw::core::render_table4(*result).c_str());
  std::printf("=== Table 5: similarity within US / EU / APAC ===\n%s\n",
              cw::core::render_table5(*result).c_str());

  // Drill-down: AWS Australia's Telnet usernames vs a US region's.
  cw::topology::VantageId aws_au = static_cast<cw::topology::VantageId>(-1);
  cw::topology::VantageId aws_us = static_cast<cw::topology::VantageId>(-1);
  for (const auto& vp : result->deployment().vantage_points()) {
    if (vp.name == "AWS/AP-AU") aws_au = vp.id;
    if (vp.name == "AWS/US-OR") aws_us = vp.id;
  }
  if (aws_au != static_cast<cw::topology::VantageId>(-1) &&
      aws_us != static_cast<cw::topology::VantageId>(-1)) {
    std::printf("=== Top Telnet usernames: AWS Australia vs AWS Oregon ===\n");
    const auto au = cw::analysis::username_table(cw::analysis::slice_vantage(
        result->store(), aws_au, cw::analysis::TrafficScope::kTelnet23));
    const auto us = cw::analysis::username_table(cw::analysis::slice_vantage(
        result->store(), aws_us, cw::analysis::TrafficScope::kTelnet23));
    const auto au_top = au.sorted();
    const auto us_top = us.sorted();
    for (std::size_t i = 0; i < 5; ++i) {
      std::printf("  #%zu  AP-AU: %-16s US-OR: %s\n", i + 1,
                  i < au_top.size() ? au_top[i].first.c_str() : "-",
                  i < us_top.size() ? us_top[i].first.c_str() : "-");
    }
    std::printf("\nThe Huawei-targeting regional dictionary (\"mother\", \"e8ehome\") dominates\n"
                "Australia, while \"root\"/\"admin\"/\"support\" lead everywhere else —\n"
                "the Section 5.1 observation.\n");
  }
  return 0;
}
