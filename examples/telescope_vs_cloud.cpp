// Demonstrates the paper's central methodological finding: what a network
// telescope sees is not what cloud services experience. Runs one experiment
// and contrasts, per popular port, the scanner populations, AS mixes, and
// the attacker evidence visible from each vantage type.
//
//   ./telescope_vs_cloud [scale]
#include <cstdio>
#include <cstdlib>

#include "analysis/characteristics.h"
#include "analysis/network.h"
#include "analysis/overlap.h"
#include "core/experiment.h"
#include "core/tables.h"

int main(int argc, char** argv) {
  cw::core::ExperimentConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  config.telescope_slash24s = 16;

  std::printf("running one simulated week across cloud, education, and telescope vantages...\n\n");
  const auto result = cw::core::Experiment(config).run();

  std::printf("=== Who scans where? (Table 8: scanner overlap) ===\n%s\n",
              cw::core::render_table8(*result).c_str());
  std::printf("=== Do attackers reach the telescope? (Table 9) ===\n%s\n",
              cw::core::render_table9(*result).c_str());
  std::printf("=== Are they even the same ASes? (Table 10) ===\n%s\n",
              cw::core::render_table10(*result).c_str());

  // Side-by-side top-AS view for SSH: the telescope's picture vs the cloud's.
  const auto telescope_ids =
      result->deployment().with_type(cw::topology::NetworkType::kTelescope);
  const auto cloud_ids = result->deployment().with_collection(
      cw::topology::CollectionMethod::kGreyNoise);
  if (!telescope_ids.empty() && !cloud_ids.empty()) {
    const auto telescope_slice = cw::analysis::slice_vantage(
        result->store(), telescope_ids.front(), cw::analysis::TrafficScope::kSsh22);
    cw::analysis::TrafficSlice cloud_slice;
    cloud_slice.store = &result->store();
    for (const auto id : cloud_ids) {
      const auto s = cw::analysis::slice_vantage(result->store(), id,
                                                 cw::analysis::TrafficScope::kSsh22);
      cloud_slice.records.insert(cloud_slice.records.end(), s.records.begin(), s.records.end());
    }
    std::printf("=== Top 5 SSH/22 scanning ASes, telescope vs cloud ===\n");
    const auto telescope_top = cw::analysis::as_table(telescope_slice).sorted();
    const auto cloud_top = cw::analysis::as_table(cloud_slice).sorted();
    const auto registry = cw::net::AsRegistry::standard();
    auto resolve = [&](const std::string& key) {
      return registry.name_of(static_cast<cw::net::Asn>(std::atoi(key.c_str() + 2)));
    };
    for (std::size_t i = 0; i < 5; ++i) {
      std::printf("  #%zu  telescope: %-28s cloud: %s\n", i + 1,
                  i < telescope_top.size() ? resolve(telescope_top[i].first).c_str() : "-",
                  i < cloud_top.size() ? resolve(cloud_top[i].first).c_str() : "-");
    }
    std::printf("\n");
  }

  std::printf(
      "Takeaway: the telescope misses most SSH attackers entirely and can never\n"
      "recover intent (no payloads) — deploy honeypots in networks that host real\n"
      "services to see cloud-focused attacks (Section 8).\n");
  return 0;
}
