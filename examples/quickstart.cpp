// Quickstart: run a scaled-down one-week cloud-watching experiment and
// print the headline analyses — who scans what, how neighboring honeypots
// differ, and how much scanning the telescope misses.
//
//   ./quickstart [scale]
//
// `scale` (default 0.3) scales the actor population; 1.0 reproduces the
// full population used by the bench harnesses.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.h"
#include "core/tables.h"

int main(int argc, char** argv) {
  cw::core::ExperimentConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  config.telescope_slash24s = 16;

  std::printf("building the %s deployment and a scale-%.2f population...\n",
              std::string(cw::topology::scenario_year_name(config.year)).c_str(), config.scale);
  const auto result = cw::core::Experiment(config).run();

  std::printf("simulated one week: %llu scheduled events, %zu captured session records\n\n",
              static_cast<unsigned long long>(result->events_processed()),
              result->store().size());

  std::printf("=== Vantage points (Table 1) ===\n%s\n",
              cw::core::render_table1(*result).c_str());
  std::printf("=== Malicious-traffic fractions (Section 3.2) ===\n%s\n",
              cw::core::render_sec32(*result).c_str());
  std::printf("=== Scanners avoiding the telescope (Table 8) ===\n%s\n",
              cw::core::render_table8(*result).c_str());
  return 0;
}
