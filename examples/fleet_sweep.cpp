// fleet_sweep — runs the two bundled campaigns through runner::Fleet and
// prints their cross-cell findings matrices: the DESIGN.md §6 ablation grid
// (one simulation, top-k × Bonferroni analysis variants) and the §4
// calibration-sensitivity sweep (seed × scale simulation grid, paper-default
// analysis). The robustness question the matrices answer: which paper
// findings are properties of attacker policy, and which move when the
// statistical recipe or the population draw moves?
//
//   fleet_sweep [--scale S] [--t24 N] [--jobs N] [ablation|calibration]
//
// With no campaign argument both run, ablation first.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/fleet.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"

int main(int argc, char** argv) {
  cw::runner::CampaignParams params;
  params.scale = 0.3;
  params.telescope_slash24s = 16;
  unsigned jobs = 1;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return 1;
      params.scale = std::atof(v);
    } else if (arg == "--t24") {
      const char* v = next();
      if (v == nullptr) return 1;
      params.telescope_slash24s = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      const auto parsed = cw::runner::parse_jobs(v);
      if (!parsed.has_value()) return 1;
      jobs = *parsed;
    } else if (arg == "ablation" || arg == "calibration") {
      names.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: fleet_sweep [--scale S] [--t24 N] [--jobs N]"
                   " [ablation|calibration]\n");
      return 1;
    }
  }
  if (names.empty()) names = {"ablation", "calibration"};

  cw::runner::ThreadPool pool(jobs);
  const cw::runner::Fleet fleet(pool);
  for (const std::string& name : names) {
    const cw::runner::Campaign campaign = name == "ablation"
                                              ? cw::runner::make_ablation_campaign(params)
                                              : cw::runner::make_calibration_campaign(params);
    std::fprintf(stderr, "running %s (%zu cells)...\n", name.c_str(), campaign.cells.size());
    const std::vector<cw::runner::CellResult> results = fleet.run(campaign);
    std::printf("%s", cw::runner::SweepReport::render(campaign, results).c_str());
  }
  return 0;
}
