// Regenerates every table of the paper from one simulated observation
// window, plus the Figure 1 summaries and the Section 3.2 headline numbers.
//
//   ./full_report [--jobs N] [scale] [telescope_slash24s]
//
// The analysis pipelines are sharded across a work-stealing thread pool
// (--jobs N, default 1; 0 = hardware concurrency) with a deterministic
// merge: the rendered tables on stdout are byte-identical at every worker
// count. Per-pipeline wall-time metrics go to stderr so they never perturb
// the comparable output. The bench/ binaries produce the same outputs one
// experiment at a time with timing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "runner/report.h"
#include "runner/thread_pool.h"

namespace {

bool set_jobs(const char* text, unsigned& jobs) {
  const auto parsed = cw::runner::parse_jobs(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "error: --jobs expects a non-negative integer, got '%s'\n", text);
    return false;
  }
  jobs = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 1;
  cw::core::ExperimentConfig config;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a value\n");
        return 2;
      }
      if (!set_jobs(argv[++i], jobs)) return 2;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      if (!set_jobs(argv[i] + 7, jobs)) return 2;
    } else if (positional == 0) {
      config.scale = std::atof(argv[i]);
      ++positional;
    } else {
      config.telescope_slash24s = std::atoi(argv[i]);
      ++positional;
    }
  }

  std::printf("== Cloud Watching full report (scale %.2f) ==\n\n", config.scale);
  const auto result = cw::core::Experiment(config).run();
  // Freeze the per-vantage index and build the shared columnar frame before
  // fanning out, so no pipeline pays for (or contends on) the first-use
  // build. The frame build itself shards over the same worker count; the
  // columns and posting lists it produces are identical at any job count.
  result->store().freeze();
  {
    cw::runner::ThreadPool frame_pool(jobs);
    static_cast<void>(result->frame(&frame_pool));
  }
  std::printf("captured %zu session records\n\n", result->store().size());

  cw::runner::ReportOptions options;
  const auto pipelines = cw::runner::paper_report_pipelines(*result, options);
  const auto run = cw::runner::run_pipelines(pipelines, jobs);

  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    std::printf("--- %s ---\n%s\n", pipelines[i].name.c_str(), run.outputs[i].c_str());
  }
  std::fprintf(stderr, "\n== runner report ==\n%s", run.report.render().c_str());
  bool failed = false;
  for (const auto& metrics : run.report.pipelines) failed |= metrics.failed;
  return failed ? 1 : 0;
}
