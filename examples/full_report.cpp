// Regenerates every table of the paper from one simulated observation
// window, plus the Figure 1 summaries and the Section 3.2 headline numbers.
//
//   ./full_report [scale] [telescope_slash24s]
//
// This is the "whole paper in one run" example; the bench/ binaries produce
// the same outputs one experiment at a time with timing.
#include <cstdio>
#include <cstdlib>

#include "analysis/leak.h"
#include "core/experiment.h"
#include "core/tables.h"

int main(int argc, char** argv) {
  cw::core::ExperimentConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  config.telescope_slash24s = argc > 2 ? std::atoi(argv[2]) : 64;

  std::printf("== Cloud Watching full report (scale %.2f) ==\n\n", config.scale);
  const auto result = cw::core::Experiment(config).run();
  std::printf("captured %zu session records\n\n", result->store().size());

  std::printf("--- Table 1: vantage points ---\n%s\n", cw::core::render_table1(*result).c_str());
  std::printf("--- Section 3.2: malicious-traffic fractions ---\n%s\n",
              cw::core::render_sec32(*result).c_str());
  std::printf("--- Table 2: neighboring services ---\n%s\n",
              cw::core::render_table2(*result).c_str());

  std::printf("--- Table 3: search-engine leak experiment ---\n");
  cw::analysis::LeakExperimentConfig leak_config;
  const auto leak = cw::analysis::run_leak_experiment(leak_config);
  std::printf("%s\n", cw::core::render_table3(leak).c_str());

  std::printf("--- Table 4: most-different geographic regions ---\n%s\n",
              cw::core::render_table4(*result).c_str());
  std::printf("--- Table 5: geographic similarity ---\n%s\n",
              cw::core::render_table5(*result).c_str());
  std::printf("--- Table 6: co-located clouds ---\n%s\n",
              cw::core::render_table6(*result).c_str());
  std::printf("--- Table 7: network types ---\n%s\n", cw::core::render_table7(*result).c_str());
  std::printf("--- Table 8: scanner overlap with the telescope ---\n%s\n",
              cw::core::render_table8(*result).c_str());
  std::printf("--- Table 9: attacker overlap with the telescope ---\n%s\n",
              cw::core::render_table9(*result).c_str());
  std::printf("--- Table 10: telescope scanners differ ---\n%s\n",
              cw::core::render_table10(*result).c_str());
  std::printf("--- Table 11: scanner-targeted protocols ---\n%s\n",
              cw::core::render_table11(*result).c_str());

  for (cw::net::Port port : {cw::net::Port{22}, cw::net::Port{445}, cw::net::Port{80},
                             cw::net::Port{17128}}) {
    std::printf("--- Figure 1 (port %u) ---\n%s\n", port,
                cw::core::render_figure1(*result, port).c_str());
  }
  return 0;
}
