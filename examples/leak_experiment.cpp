// Runs the Section 4.3 search-engine leak experiment end to end and walks
// through what happened: which honeypot groups the engines could see, how
// the miners found them, and the resulting Table 3.
//
//   ./leak_experiment [population_scale]
#include <cstdio>
#include <cstdlib>

#include "analysis/leak.h"
#include "core/tables.h"

int main(int argc, char** argv) {
  cw::analysis::LeakExperimentConfig config;
  config.population_scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  std::printf("deploying %d control + %d previously-leaked + %d leaked honeypot IPs...\n",
              config.control_ips, config.previously_leaked_ips,
              config.leaked_ips_per_group * 6);
  std::printf("leak matrix: {Censys, Shodan} x {SSH/22, Telnet/23, HTTP/80}, one group each\n");
  std::printf("running one simulated week with baseline scanners + search-engine miners...\n\n");

  const auto result = cw::analysis::run_leak_experiment(config);
  std::printf("captured %llu session records (engine probes excluded from measurements)\n\n",
              static_cast<unsigned long long>(result.total_records));

  std::printf("%s\n", cw::core::render_table3(result).c_str());

  std::printf("control-group baseline (events per IP per hour): SSH %.2f, Telnet %.2f, "
              "HTTP %.2f\n\n",
              result.control_hourly_mean[0], result.control_hourly_mean[1],
              result.control_hourly_mean[2]);

  std::printf("per-condition detail:\n");
  for (const cw::analysis::LeakCell& cell : result.cells) {
    std::printf("  port %-5u %-18s fold(all)=%6.1f fold(malicious)=%6.1f spikes/IP=%4.0f "
                "unique-passwords/IP=%5.1f\n",
                cell.port, std::string(cw::analysis::leak_condition_name(cell.condition)).c_str(),
                cell.fold_all, cell.fold_malicious, cell.spikes_per_ip,
                cell.unique_passwords_per_ip);
  }
  return 0;
}
