// Live (streaming) counterpart of full_report: runs the same observation
// window in epoch slices through the stream subsystem, re-rendering every
// paper table at each epoch boundary from sealed segments.
//
//   ./live_report [--jobs N] [--epochs K] [--shards M] [--final-only]
//                 [--spill-dir DIR] [--hot-segments N|all] [scale] [t24]
//
// --spill-dir spills segments older than the newest --hot-segments to DIR
// (out-of-core tiering; see stream::LiveReportConfig). The report bytes are
// unchanged — the coldstore check tier diffs spilled vs resident output.
//
// With --final-only, only the final epoch's report is printed — in exactly
// the byte format of full_report — so
//
//   diff <(./full_report S T) <(./live_report --final-only --epochs K S T)
//
// is empty for any K, M, and --jobs: the live incremental report over the
// full window is byte-identical to the one-shot batch report. Without
// --final-only, each epoch prints its own full table set under an epoch
// header (and the final epoch still matches full_report's table bytes).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/thread_pool.h"
#include "stream/live_report.h"

namespace {

bool set_jobs(const char* text, unsigned& jobs) {
  const auto parsed = cw::runner::parse_jobs(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "error: --jobs expects a non-negative integer, got '%s'\n", text);
    return false;
  }
  jobs = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cw::stream::LiveReportConfig config;
  bool final_only = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const char* v = value();
      if (v == nullptr || !set_jobs(v, config.jobs)) return 2;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      if (!set_jobs(argv[i] + 7, config.jobs)) return 2;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) {
        std::fprintf(stderr, "error: --epochs expects a positive integer\n");
        return 2;
      }
      config.epochs = static_cast<std::size_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) {
        std::fprintf(stderr, "error: --shards expects a positive integer\n");
        return 2;
      }
      config.shards = static_cast<std::size_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--spill-dir") == 0) {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "error: --spill-dir expects a directory\n");
        return 2;
      }
      config.spill_dir = v;
    } else if (std::strcmp(argv[i], "--hot-segments") == 0) {
      const char* v = value();
      if (v != nullptr && std::strcmp(v, "all") == 0) {
        config.hot_segments = static_cast<std::size_t>(-1);
      } else if (v != nullptr && std::atoi(v) >= 0 && *v >= '0' && *v <= '9') {
        config.hot_segments = static_cast<std::size_t>(std::atoi(v));
      } else {
        std::fprintf(stderr, "error: --hot-segments expects a non-negative integer or 'all'\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--final-only") == 0) {
      final_only = true;
    } else if (positional == 0) {
      config.experiment.scale = std::atof(argv[i]);
      ++positional;
    } else {
      config.experiment.telescope_slash24s = std::atoi(argv[i]);
      ++positional;
    }
  }
  config.render_intermediate = !final_only;

  if (!final_only) {
    std::printf("== Cloud Watching live report (scale %.2f, %zu epochs, %zu shards) ==\n\n",
                config.experiment.scale, config.epochs, config.shards);
  }

  bool failed = false;
  cw::stream::LiveReport live(config);
  const auto final_report = live.run([&](const cw::stream::EpochReport& report) {
    failed |= report.failed;
    if (final_only || !report.rendered) return;
    std::printf("== epoch %llu/%zu (sim %s): %llu records (+%llu) ==\n\n",
                static_cast<unsigned long long>(report.epoch), config.epochs,
                cw::util::format_sim_time(report.now).c_str(),
                static_cast<unsigned long long>(report.records_total),
                static_cast<unsigned long long>(report.records_new));
    for (std::size_t i = 0; i < report.outputs.size(); ++i) {
      std::printf("--- %s ---\n%s\n", report.names[i].c_str(), report.outputs[i].c_str());
    }
    std::fprintf(stderr, "\n== epoch %llu runner report ==\n%s",
                 static_cast<unsigned long long>(report.epoch),
                 report.run_report.render().c_str());
  });

  if (final_only) {
    // Byte-compatible with full_report over the same configuration.
    std::printf("== Cloud Watching full report (scale %.2f) ==\n\n", config.experiment.scale);
    std::printf("captured %llu session records\n\n",
                static_cast<unsigned long long>(final_report.records_total));
    for (std::size_t i = 0; i < final_report.outputs.size(); ++i) {
      std::printf("--- %s ---\n%s\n", final_report.names[i].c_str(),
                  final_report.outputs[i].c_str());
    }
    std::fprintf(stderr, "\n== runner report ==\n%s", final_report.run_report.render().c_str());
  }
  return failed ? 1 : 0;
}
