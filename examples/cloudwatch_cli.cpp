// cloudwatch_cli — command-line driver for the library.
//
//   cloudwatch_cli report  [--scale S] [--t24 N] [--year 2020|2021|2022] [--table NAME]...
//   cloudwatch_cli export  [--scale S] [--t24 N] [--year Y] --out FILE [--csv FILE]
//   cloudwatch_cli inspect --in FILE
//   cloudwatch_cli watch   [--scale S] [--t24 N] [--year Y] [--epochs K] [--shards M] [--jobs N]
//   cloudwatch_cli serve   [--scale S] [--t24 N] [--year Y] [--epochs K] [--shards M] [--jobs N]
//                          [--port P] [--port-file FILE] [--serve-workers N] [--max-conn N]
//                          [--linger SECONDS]
//   cloudwatch_cli sweep   CAMPAIGN [--scale S] [--t24 N] [--year Y] [--jobs N]
//                          [--cell LABEL] [--cells-dir DIR]
//
// `report` runs an experiment and prints the requested tables (default:
// all). `export` additionally persists the captured traffic — the analog of
// the paper's released dataset — in the CWDS binary format and optionally
// as CSV. `inspect` summarizes a previously exported dataset. `watch` runs
// the window as a continuously-serving stream: ingest is sealed into an
// epoch segment every window/K of simulated time and the paper tables are
// re-rendered incrementally after each seal (src/stream). `serve` runs the
// same live window but publishes every sealed epoch's tables and findings
// through stream::ReportServer (src/serve), so any number of HTTP readers
// can pull per-epoch reports while ingest keeps sealing; after the final
// epoch the server lingers (--linger) so late readers can still fetch.
// `sweep` runs a
// named campaign (`sweep --list` enumerates the registry) through
// runner::Fleet and prints the cross-cell findings matrix as markdown or,
// with `--format json`, as one machine-readable object; `--cell` reruns one
// cell standalone (byte-identical to its in-fleet per-cell block) and
// `--cells-dir` writes each cell's block to DIR for that comparison (the
// check.sh fleet and adversary tiers).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <filesystem>

#include <chrono>
#include <thread>

#include "capture/dataset.h"
#include "capture/pcap.h"
#include "core/experiment.h"
#include "core/tables.h"
#include "runner/fleet.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "serve/server.h"
#include "stream/live_report.h"
#include "stream/spill_runner.h"

namespace {

using cw::core::ExperimentResult;

struct Options {
  std::string command;
  double scale = 0.5;
  int telescope_slash24s = 16;
  cw::topology::ScenarioYear year = cw::topology::ScenarioYear::k2021;
  std::vector<std::string> tables;
  std::string out_path;
  std::string csv_path;
  std::string pcap_path;
  std::string in_path;
  std::size_t epochs = 4;
  std::size_t shards = 4;
  unsigned jobs = 1;
  std::string campaign;
  std::string cell;
  std::string cells_dir;
  std::size_t stress_cells = 1000;
  int port = 0;  // 0 = kernel-assigned ephemeral port
  std::string port_file;
  unsigned serve_workers = 4;
  std::size_t max_connections = 128;
  int linger = 0;  // seconds to keep serving after the final epoch
  // Out-of-core tiering (watch/serve/sweep): active when spill_dir is set.
  std::string spill_dir;
  std::size_t hot_segments = 1;  // --hot-segments all => SIZE_MAX
  bool list_campaigns = false;   // sweep --list
  std::string format = "markdown";  // sweep --format markdown|json
};

void usage() {
  std::fprintf(stderr,
               "usage: cloudwatch_cli report [--scale S] [--t24 N] [--year Y] [--table NAME]...\n"
               "       cloudwatch_cli export [--scale S] [--t24 N] [--year Y] --out FILE"
               " [--csv FILE] [--pcap FILE]\n"
               "       cloudwatch_cli inspect --in FILE\n"
               "       cloudwatch_cli watch [--scale S] [--t24 N] [--year Y] [--epochs K]"
               " [--shards M] [--jobs N]\n"
               "                            [--spill-dir DIR] [--hot-segments N|all]\n"
               "       cloudwatch_cli serve [--scale S] [--t24 N] [--year Y] [--epochs K]"
               " [--shards M] [--jobs N]\n"
               "                            [--port P] [--port-file FILE] [--serve-workers N]"
               " [--max-conn N] [--linger SECONDS]\n"
               "                            [--spill-dir DIR] [--hot-segments N|all]\n"
               "       cloudwatch_cli sweep CAMPAIGN [--scale S] [--t24 N] [--year Y] [--jobs N]"
               " [--cell LABEL] [--cells-dir DIR] [--cells N]\n"
               "                            [--spill-dir DIR] [--hot-segments N|all]"
               " [--epochs K] [--shards M]\n"
               "                            [--format markdown|json]\n"
               "       cloudwatch_cli sweep --list\n"
               "tables: 1 2 4 5 6 7 8 9 10 11 17 sec32 fig1\n"
               "campaigns: ablation calibration stress adaptive colocation clustering"
               " (sweep --list describes each)\n"
               "--spill-dir spills sealed epoch segments to DIR, keeping only the newest\n"
               "--hot-segments resident (out-of-core corpora); output bytes are unchanged.\n");
}

bool parse(int argc, char** argv, Options& options) {
  if (argc < 2) return false;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      options.scale = std::atof(v);
    } else if (arg == "--t24") {
      const char* v = next();
      if (v == nullptr) return false;
      options.telescope_slash24s = std::atoi(v);
    } else if (arg == "--year") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "2020") == 0) {
        options.year = cw::topology::ScenarioYear::k2020;
      } else if (std::strcmp(v, "2021") == 0) {
        options.year = cw::topology::ScenarioYear::k2021;
      } else if (std::strcmp(v, "2022") == 0) {
        options.year = cw::topology::ScenarioYear::k2022;
      } else {
        return false;
      }
    } else if (arg == "--table") {
      const char* v = next();
      if (v == nullptr) return false;
      options.tables.push_back(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      options.out_path = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return false;
      options.csv_path = v;
    } else if (arg == "--pcap") {
      const char* v = next();
      if (v == nullptr) return false;
      options.pcap_path = v;
    } else if (arg == "--in") {
      const char* v = next();
      if (v == nullptr) return false;
      options.in_path = v;
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      options.epochs = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      options.shards = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0) return false;
      options.jobs = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--cell") {
      const char* v = next();
      if (v == nullptr) return false;
      options.cell = v;
    } else if (arg == "--cells-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options.cells_dir = v;
    } else if (arg == "--cells") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      options.stress_cells = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0 || std::atoi(v) > 65535) return false;
      options.port = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      options.port_file = v;
    } else if (arg == "--serve-workers") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      options.serve_workers = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-conn") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      options.max_connections = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--linger") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0) return false;
      options.linger = std::atoi(v);
    } else if (arg == "--spill-dir") {
      const char* v = next();
      if (v == nullptr || *v == '\0') return false;
      options.spill_dir = v;
    } else if (arg == "--list") {
      options.list_campaigns = true;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "markdown") != 0 && std::strcmp(v, "json") != 0)) {
        return false;
      }
      options.format = v;
    } else if (arg == "--hot-segments") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "all") == 0) {
        options.hot_segments = static_cast<std::size_t>(-1);
      } else if (std::atoi(v) >= 0 && (std::isdigit(static_cast<unsigned char>(*v)) != 0)) {
        options.hot_segments = static_cast<std::size_t>(std::atoi(v));
      } else {
        return false;
      }
    } else if (!arg.empty() && arg[0] != '-' && options.command == "sweep" &&
               options.campaign.empty()) {
      options.campaign = arg;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<ExperimentResult> run_experiment(const Options& options) {
  cw::core::ExperimentConfig config;
  config.scale = options.scale;
  config.telescope_slash24s = options.telescope_slash24s;
  config.year = options.year;
  std::fprintf(stderr, "running %s experiment (scale %.2f, telescope %d /24s)...\n",
               std::string(cw::topology::scenario_year_name(options.year)).c_str(),
               options.scale, options.telescope_slash24s);
  return cw::core::Experiment(config).run();
}

int cmd_report(const Options& options) {
  const auto result = run_experiment(options);
  const std::map<std::string, std::string (*)(const ExperimentResult&)> renderers = {
      {"1", cw::core::render_table1},   {"2", cw::core::render_table2},
      {"4", cw::core::render_table4},   {"5", cw::core::render_table5},
      {"6", cw::core::render_table6},   {"7", cw::core::render_table7},
      {"8", cw::core::render_table8},   {"9", cw::core::render_table9},
      {"10", cw::core::render_table10}, {"11", cw::core::render_table11},
      {"17", cw::core::render_table17}, {"sec32", cw::core::render_sec32},
  };
  std::vector<std::string> selected = options.tables;
  if (selected.empty()) {
    for (const auto& [name, renderer] : renderers) selected.push_back(name);
    selected.push_back("fig1");
  }
  for (const std::string& name : selected) {
    if (name == "fig1") {
      std::printf("--- figure 1 (port 22) ---\n%s\n",
                  cw::core::render_figure1(*result, 22).c_str());
      continue;
    }
    auto it = renderers.find(name);
    if (it == renderers.end()) {
      std::fprintf(stderr, "unknown table: %s\n", name.c_str());
      return 1;
    }
    std::printf("--- table %s ---\n%s\n", name.c_str(), it->second(*result).c_str());
  }
  return 0;
}

int cmd_export(const Options& options) {
  if (options.out_path.empty()) {
    usage();
    return 1;
  }
  const auto result = run_experiment(options);
  if (!cw::capture::save_dataset(result->store(), options.out_path)) {
    std::fprintf(stderr, "failed to write %s\n", options.out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", result->store().size(), options.out_path.c_str());
  if (!options.csv_path.empty()) {
    std::ofstream csv(options.csv_path);
    if (!csv) {
      std::fprintf(stderr, "failed to open %s\n", options.csv_path.c_str());
      return 1;
    }
    cw::capture::write_csv(result->store(), result->deployment(), csv);
    std::printf("wrote CSV to %s\n", options.csv_path.c_str());
  }
  if (!options.pcap_path.empty()) {
    const std::size_t packets = cw::capture::save_pcap(result->store(), options.pcap_path);
    if (packets == 0) {
      std::fprintf(stderr, "failed to write %s\n", options.pcap_path.c_str());
      return 1;
    }
    std::printf("wrote %zu packets to %s (libpcap format)\n", packets,
                options.pcap_path.c_str());
  }
  return 0;
}

int cmd_inspect(const Options& options) {
  if (options.in_path.empty()) {
    usage();
    return 1;
  }
  const auto store = cw::capture::load_dataset(options.in_path);
  if (!store) {
    std::fprintf(stderr, "failed to load %s (not a CWDS dataset?)\n", options.in_path.c_str());
    return 1;
  }
  std::set<std::uint32_t> sources;
  std::set<std::uint32_t> ases;
  std::map<cw::net::Port, std::uint64_t> per_port;
  std::uint64_t with_payload = 0;
  std::uint64_t with_credential = 0;
  for (const auto& record : store->records()) {
    sources.insert(record.src);
    ases.insert(record.src_as);
    ++per_port[record.port];
    if (record.payload_id != cw::capture::kNoPayload) ++with_payload;
    if (record.credential_id != cw::capture::kNoCredential) ++with_credential;
  }
  std::printf("dataset: %s\n", options.in_path.c_str());
  std::printf("  records:            %zu\n", store->size());
  std::printf("  unique source IPs:  %zu\n", sources.size());
  std::printf("  unique source ASes: %zu\n", ases.size());
  std::printf("  distinct payloads:  %zu (%llu records carry one)\n", store->distinct_payloads(),
              static_cast<unsigned long long>(with_payload));
  std::printf("  credential records: %llu\n", static_cast<unsigned long long>(with_credential));
  std::printf("  top ports:\n");
  std::vector<std::pair<std::uint64_t, cw::net::Port>> ports;
  for (const auto& [port, count] : per_port) ports.emplace_back(count, port);
  std::sort(ports.rbegin(), ports.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(ports.size(), 10); ++i) {
    std::printf("    %5u  %llu\n", ports[i].second,
                static_cast<unsigned long long>(ports[i].first));
  }
  return 0;
}

int cmd_watch(const Options& options) {
  cw::stream::LiveReportConfig config;
  config.experiment.scale = options.scale;
  config.experiment.telescope_slash24s = options.telescope_slash24s;
  config.experiment.year = options.year;
  config.epochs = options.epochs;
  config.shards = options.shards;
  config.jobs = options.jobs;
  if (!options.spill_dir.empty()) {
    config.spill_dir = options.spill_dir;
    config.hot_segments = options.hot_segments;
  }
  // The leak experiment re-simulates its own populations and its result does
  // not change across epochs; keep interactive watching responsive.
  config.report.include_leak = false;
  std::fprintf(stderr,
               "watching %s experiment (scale %.2f, telescope %d /24s,"
               " %zu epochs, %zu shards)...\n",
               std::string(cw::topology::scenario_year_name(options.year)).c_str(),
               options.scale, options.telescope_slash24s, options.epochs, options.shards);

  bool failed = false;
  cw::stream::LiveReport live(config);
  live.run([&](const cw::stream::EpochReport& report) {
    failed |= report.failed;
    std::printf("== epoch %llu/%zu (sim %s): %llu records (+%llu) ==\n\n",
                static_cast<unsigned long long>(report.epoch), options.epochs,
                cw::util::format_sim_time(report.now).c_str(),
                static_cast<unsigned long long>(report.records_total),
                static_cast<unsigned long long>(report.records_new));
    for (std::size_t i = 0; i < report.outputs.size(); ++i) {
      std::printf("--- %s ---\n%s\n", report.names[i].c_str(), report.outputs[i].c_str());
    }
  });
  return failed ? 1 : 0;
}

int cmd_serve(const Options& options) {
  cw::stream::LiveReportConfig config;
  config.experiment.scale = options.scale;
  config.experiment.telescope_slash24s = options.telescope_slash24s;
  config.experiment.year = options.year;
  config.epochs = options.epochs;
  config.shards = options.shards;
  config.jobs = options.jobs;
  if (!options.spill_dir.empty()) {
    config.spill_dir = options.spill_dir;
    config.hot_segments = options.hot_segments;
  }
  // Unlike `watch`, the leak table stays in: /epoch/<k>/report promises the
  // exact full_report byte stream, and check.sh diffs the two.
  config.extract_findings = true;

  cw::stream::ReportPublisher publisher;
  cw::stream::ReportServerConfig server_config;
  server_config.port = static_cast<std::uint16_t>(options.port);
  server_config.workers = options.serve_workers;
  server_config.max_connections = options.max_connections;
  cw::stream::ReportServer server(publisher, server_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "failed to start report server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "serving on http://127.0.0.1:%u\n", server.port());
  if (!options.port_file.empty()) {
    // Written only once the socket is listening, so scripts can poll the
    // file instead of racing the bind.
    std::ofstream port_file(options.port_file);
    if (!port_file) {
      std::fprintf(stderr, "failed to write %s\n", options.port_file.c_str());
      return 1;
    }
    port_file << server.port() << '\n';
  }

  std::fprintf(stderr,
               "serving %s experiment (scale %.2f, telescope %d /24s,"
               " %zu epochs, %zu shards)...\n",
               std::string(cw::topology::scenario_year_name(options.year)).c_str(),
               options.scale, options.telescope_slash24s, options.epochs, options.shards);
  bool failed = false;
  cw::stream::LiveReport live(config);
  live.run([&](const cw::stream::EpochReport& report) {
    failed |= report.failed;
    if (!report.rendered) return;
    publisher.publish(cw::stream::PublishedEpoch::from_report(report, options.scale));
    std::fprintf(stderr, "published epoch %llu/%zu: %llu records (+%llu)\n",
                 static_cast<unsigned long long>(report.epoch), options.epochs,
                 static_cast<unsigned long long>(report.records_total),
                 static_cast<unsigned long long>(report.records_new));
  });
  if (options.linger > 0) {
    std::fprintf(stderr, "final epoch published; lingering %d s for late readers...\n",
                 options.linger);
    std::this_thread::sleep_for(std::chrono::seconds(options.linger));
  }
  server.stop();
  const auto stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests over %llu connections (%llu cache hits, %llu rejected)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.rejected));
  return failed ? 1 : 0;
}

// Cell labels may contain '/': flatten them for per-cell filenames.
std::string cell_file_name(const std::string& label) {
  std::string name = label;
  for (char& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  return name + ".md";
}

int cmd_sweep(const Options& options) {
  if (options.list_campaigns) {
    for (const cw::runner::CampaignInfo& info : cw::runner::campaign_registry()) {
      std::printf("%-12s %s\n", std::string(info.name).c_str(),
                  std::string(info.description).c_str());
    }
    return 0;
  }
  cw::runner::CampaignParams params;
  params.scale = options.scale;
  params.telescope_slash24s = options.telescope_slash24s;
  params.year = options.year;
  std::optional<cw::runner::Campaign> preset =
      cw::runner::make_campaign(options.campaign, params, options.stress_cells);
  if (!preset.has_value()) {
    if (!options.campaign.empty()) {
      std::fprintf(stderr, "unknown campaign: %s (try `cloudwatch_cli sweep --list`)\n",
                   options.campaign.c_str());
    } else {
      usage();
    }
    return 1;
  }
  cw::runner::Campaign campaign = std::move(*preset);
  if (!options.cell.empty()) {
    // Standalone cell rerun: a one-cell campaign with the same campaign
    // seed. Fleet::cell_seed depends only on (campaign seed, sim_label), so
    // this reproduces the in-fleet corpus — and bytes — exactly.
    std::vector<cw::runner::FleetCell> kept;
    for (cw::runner::FleetCell& cell : campaign.cells) {
      if (cell.label == options.cell) kept.push_back(std::move(cell));
    }
    if (kept.empty()) {
      std::fprintf(stderr, "unknown cell: %s\n", options.cell.c_str());
      return 1;
    }
    campaign.cells = std::move(kept);
  }
  std::fprintf(stderr, "sweeping %s (%zu cells, scale %.2f, telescope %d /24s, jobs %u)...\n",
               campaign.name.c_str(), campaign.cells.size(), options.scale,
               options.telescope_slash24s, options.jobs);
  cw::runner::ThreadPool pool(options.jobs);
  cw::runner::Fleet fleet(pool);
  if (!options.spill_dir.empty()) {
    // Out-of-core simulations: every group runs its window in epochs and
    // keeps only the newest --hot-segments resident; findings are
    // byte-identical to the resident path (check.sh coldstore diffs them).
    cw::stream::SpillSimOptions spill;
    spill.spill_dir = options.spill_dir;
    spill.hot_segments = options.hot_segments;
    spill.epochs = options.epochs;
    spill.shards = options.shards;
    fleet.set_sim_runner(cw::stream::make_spill_sim_runner(spill, &pool));
  }
  const std::vector<cw::runner::CellResult> results = fleet.run(campaign);
  if (!options.cells_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cells_dir, ec);
    for (const cw::runner::CellResult& cell : results) {
      const std::filesystem::path path =
          std::filesystem::path(options.cells_dir) / cell_file_name(cell.label);
      std::ofstream file(path);
      if (!file) {
        std::fprintf(stderr, "failed to write %s\n", path.string().c_str());
        return 1;
      }
      file << cw::runner::render_cell(cell);
    }
  }
  if (!options.cell.empty()) {
    std::printf("%s", cw::runner::render_cell(results.front()).c_str());
    return 0;
  }
  const std::string report =
      options.format == "json" ? cw::runner::SweepReport::render_json(campaign, results)
                               : cw::runner::SweepReport::render(campaign, results);
  std::printf("%s", report.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 1;
  }
  if (options.command == "report") return cmd_report(options);
  if (options.command == "export") return cmd_export(options);
  if (options.command == "inspect") return cmd_inspect(options);
  if (options.command == "watch") return cmd_watch(options);
  if (options.command == "serve") return cmd_serve(options);
  if (options.command == "sweep") return cmd_sweep(options);
  usage();
  return 1;
}
