file(REMOVE_RECURSE
  "libcw_ids.a"
)
