# Empty compiler generated dependencies file for cw_ids.
# This may be replaced when dependencies are built.
