
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ids/engine.cpp" "src/ids/CMakeFiles/cw_ids.dir/engine.cpp.o" "gcc" "src/ids/CMakeFiles/cw_ids.dir/engine.cpp.o.d"
  "/root/repo/src/ids/rule.cpp" "src/ids/CMakeFiles/cw_ids.dir/rule.cpp.o" "gcc" "src/ids/CMakeFiles/cw_ids.dir/rule.cpp.o.d"
  "/root/repo/src/ids/ruleset.cpp" "src/ids/CMakeFiles/cw_ids.dir/ruleset.cpp.o" "gcc" "src/ids/CMakeFiles/cw_ids.dir/ruleset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
