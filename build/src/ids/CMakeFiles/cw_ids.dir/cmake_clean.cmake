file(REMOVE_RECURSE
  "CMakeFiles/cw_ids.dir/engine.cpp.o"
  "CMakeFiles/cw_ids.dir/engine.cpp.o.d"
  "CMakeFiles/cw_ids.dir/rule.cpp.o"
  "CMakeFiles/cw_ids.dir/rule.cpp.o.d"
  "CMakeFiles/cw_ids.dir/ruleset.cpp.o"
  "CMakeFiles/cw_ids.dir/ruleset.cpp.o.d"
  "libcw_ids.a"
  "libcw_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
