# Empty dependencies file for cw_proto.
# This may be replaced when dependencies are built.
