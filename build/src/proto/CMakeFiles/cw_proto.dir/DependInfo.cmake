
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/banners.cpp" "src/proto/CMakeFiles/cw_proto.dir/banners.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/banners.cpp.o.d"
  "/root/repo/src/proto/credentials.cpp" "src/proto/CMakeFiles/cw_proto.dir/credentials.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/credentials.cpp.o.d"
  "/root/repo/src/proto/exploits.cpp" "src/proto/CMakeFiles/cw_proto.dir/exploits.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/exploits.cpp.o.d"
  "/root/repo/src/proto/fingerprint.cpp" "src/proto/CMakeFiles/cw_proto.dir/fingerprint.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/fingerprint.cpp.o.d"
  "/root/repo/src/proto/http.cpp" "src/proto/CMakeFiles/cw_proto.dir/http.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/http.cpp.o.d"
  "/root/repo/src/proto/payloads.cpp" "src/proto/CMakeFiles/cw_proto.dir/payloads.cpp.o" "gcc" "src/proto/CMakeFiles/cw_proto.dir/payloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
