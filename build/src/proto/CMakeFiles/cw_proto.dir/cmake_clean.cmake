file(REMOVE_RECURSE
  "CMakeFiles/cw_proto.dir/banners.cpp.o"
  "CMakeFiles/cw_proto.dir/banners.cpp.o.d"
  "CMakeFiles/cw_proto.dir/credentials.cpp.o"
  "CMakeFiles/cw_proto.dir/credentials.cpp.o.d"
  "CMakeFiles/cw_proto.dir/exploits.cpp.o"
  "CMakeFiles/cw_proto.dir/exploits.cpp.o.d"
  "CMakeFiles/cw_proto.dir/fingerprint.cpp.o"
  "CMakeFiles/cw_proto.dir/fingerprint.cpp.o.d"
  "CMakeFiles/cw_proto.dir/http.cpp.o"
  "CMakeFiles/cw_proto.dir/http.cpp.o.d"
  "CMakeFiles/cw_proto.dir/payloads.cpp.o"
  "CMakeFiles/cw_proto.dir/payloads.cpp.o.d"
  "libcw_proto.a"
  "libcw_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
