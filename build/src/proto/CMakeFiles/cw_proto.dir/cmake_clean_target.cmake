file(REMOVE_RECURSE
  "libcw_proto.a"
)
