file(REMOVE_RECURSE
  "CMakeFiles/cw_core.dir/experiment.cpp.o"
  "CMakeFiles/cw_core.dir/experiment.cpp.o.d"
  "CMakeFiles/cw_core.dir/tables.cpp.o"
  "CMakeFiles/cw_core.dir/tables.cpp.o.d"
  "CMakeFiles/cw_core.dir/temporal.cpp.o"
  "CMakeFiles/cw_core.dir/temporal.cpp.o.d"
  "libcw_core.a"
  "libcw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
