# Empty compiler generated dependencies file for cw_core.
# This may be replaced when dependencies are built.
