file(REMOVE_RECURSE
  "libcw_core.a"
)
