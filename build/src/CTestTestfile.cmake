# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("stats")
subdirs("sim")
subdirs("topology")
subdirs("proto")
subdirs("ids")
subdirs("searchengine")
subdirs("capture")
subdirs("agents")
subdirs("analysis")
subdirs("core")
