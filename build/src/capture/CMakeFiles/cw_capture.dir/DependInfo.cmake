
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/collector.cpp" "src/capture/CMakeFiles/cw_capture.dir/collector.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/collector.cpp.o.d"
  "/root/repo/src/capture/dataset.cpp" "src/capture/CMakeFiles/cw_capture.dir/dataset.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/dataset.cpp.o.d"
  "/root/repo/src/capture/event.cpp" "src/capture/CMakeFiles/cw_capture.dir/event.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/event.cpp.o.d"
  "/root/repo/src/capture/firewall.cpp" "src/capture/CMakeFiles/cw_capture.dir/firewall.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/firewall.cpp.o.d"
  "/root/repo/src/capture/interner.cpp" "src/capture/CMakeFiles/cw_capture.dir/interner.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/interner.cpp.o.d"
  "/root/repo/src/capture/pcap.cpp" "src/capture/CMakeFiles/cw_capture.dir/pcap.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/pcap.cpp.o.d"
  "/root/repo/src/capture/store.cpp" "src/capture/CMakeFiles/cw_capture.dir/store.cpp.o" "gcc" "src/capture/CMakeFiles/cw_capture.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ids/CMakeFiles/cw_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
