# Empty dependencies file for cw_capture.
# This may be replaced when dependencies are built.
