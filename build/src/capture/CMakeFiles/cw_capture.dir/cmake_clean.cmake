file(REMOVE_RECURSE
  "CMakeFiles/cw_capture.dir/collector.cpp.o"
  "CMakeFiles/cw_capture.dir/collector.cpp.o.d"
  "CMakeFiles/cw_capture.dir/dataset.cpp.o"
  "CMakeFiles/cw_capture.dir/dataset.cpp.o.d"
  "CMakeFiles/cw_capture.dir/event.cpp.o"
  "CMakeFiles/cw_capture.dir/event.cpp.o.d"
  "CMakeFiles/cw_capture.dir/firewall.cpp.o"
  "CMakeFiles/cw_capture.dir/firewall.cpp.o.d"
  "CMakeFiles/cw_capture.dir/interner.cpp.o"
  "CMakeFiles/cw_capture.dir/interner.cpp.o.d"
  "CMakeFiles/cw_capture.dir/pcap.cpp.o"
  "CMakeFiles/cw_capture.dir/pcap.cpp.o.d"
  "CMakeFiles/cw_capture.dir/store.cpp.o"
  "CMakeFiles/cw_capture.dir/store.cpp.o.d"
  "libcw_capture.a"
  "libcw_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
