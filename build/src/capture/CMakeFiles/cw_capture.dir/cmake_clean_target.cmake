file(REMOVE_RECURSE
  "libcw_capture.a"
)
