# Empty dependencies file for cw_agents.
# This may be replaced when dependencies are built.
