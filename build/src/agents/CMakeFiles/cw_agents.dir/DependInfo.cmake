
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/actor.cpp" "src/agents/CMakeFiles/cw_agents.dir/actor.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/actor.cpp.o.d"
  "/root/repo/src/agents/botnet.cpp" "src/agents/CMakeFiles/cw_agents.dir/botnet.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/botnet.cpp.o.d"
  "/root/repo/src/agents/campaign.cpp" "src/agents/CMakeFiles/cw_agents.dir/campaign.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/campaign.cpp.o.d"
  "/root/repo/src/agents/evader.cpp" "src/agents/CMakeFiles/cw_agents.dir/evader.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/evader.cpp.o.d"
  "/root/repo/src/agents/miner.cpp" "src/agents/CMakeFiles/cw_agents.dir/miner.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/miner.cpp.o.d"
  "/root/repo/src/agents/population.cpp" "src/agents/CMakeFiles/cw_agents.dir/population.cpp.o" "gcc" "src/agents/CMakeFiles/cw_agents.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/cw_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/searchengine/CMakeFiles/cw_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cw_ids.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
