file(REMOVE_RECURSE
  "libcw_agents.a"
)
