file(REMOVE_RECURSE
  "CMakeFiles/cw_agents.dir/actor.cpp.o"
  "CMakeFiles/cw_agents.dir/actor.cpp.o.d"
  "CMakeFiles/cw_agents.dir/botnet.cpp.o"
  "CMakeFiles/cw_agents.dir/botnet.cpp.o.d"
  "CMakeFiles/cw_agents.dir/campaign.cpp.o"
  "CMakeFiles/cw_agents.dir/campaign.cpp.o.d"
  "CMakeFiles/cw_agents.dir/evader.cpp.o"
  "CMakeFiles/cw_agents.dir/evader.cpp.o.d"
  "CMakeFiles/cw_agents.dir/miner.cpp.o"
  "CMakeFiles/cw_agents.dir/miner.cpp.o.d"
  "CMakeFiles/cw_agents.dir/population.cpp.o"
  "CMakeFiles/cw_agents.dir/population.cpp.o.d"
  "libcw_agents.a"
  "libcw_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
