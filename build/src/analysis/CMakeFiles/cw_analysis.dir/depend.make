# Empty dependencies file for cw_analysis.
# This may be replaced when dependencies are built.
