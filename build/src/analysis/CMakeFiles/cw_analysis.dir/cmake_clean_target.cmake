file(REMOVE_RECURSE
  "libcw_analysis.a"
)
