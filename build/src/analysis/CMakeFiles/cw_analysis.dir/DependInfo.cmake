
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocklist.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/blocklist.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/blocklist.cpp.o.d"
  "/root/repo/src/analysis/campaigns.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/campaigns.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/campaigns.cpp.o.d"
  "/root/repo/src/analysis/characteristics.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/characteristics.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/characteristics.cpp.o.d"
  "/root/repo/src/analysis/comparison.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/comparison.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/comparison.cpp.o.d"
  "/root/repo/src/analysis/geography.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/geography.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/geography.cpp.o.d"
  "/root/repo/src/analysis/leak.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/leak.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/leak.cpp.o.d"
  "/root/repo/src/analysis/malicious.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/malicious.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/malicious.cpp.o.d"
  "/root/repo/src/analysis/neighborhood.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/neighborhood.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/neighborhood.cpp.o.d"
  "/root/repo/src/analysis/network.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/network.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/network.cpp.o.d"
  "/root/repo/src/analysis/oracle.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/oracle.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/oracle.cpp.o.d"
  "/root/repo/src/analysis/overlap.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/overlap.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/overlap.cpp.o.d"
  "/root/repo/src/analysis/protocols.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/protocols.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/protocols.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/analysis/CMakeFiles/cw_analysis.dir/structure.cpp.o" "gcc" "src/analysis/CMakeFiles/cw_analysis.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agents/CMakeFiles/cw_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/cw_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cw_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/searchengine/CMakeFiles/cw_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
