file(REMOVE_RECURSE
  "CMakeFiles/cw_analysis.dir/blocklist.cpp.o"
  "CMakeFiles/cw_analysis.dir/blocklist.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/campaigns.cpp.o"
  "CMakeFiles/cw_analysis.dir/campaigns.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/characteristics.cpp.o"
  "CMakeFiles/cw_analysis.dir/characteristics.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/comparison.cpp.o"
  "CMakeFiles/cw_analysis.dir/comparison.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/geography.cpp.o"
  "CMakeFiles/cw_analysis.dir/geography.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/leak.cpp.o"
  "CMakeFiles/cw_analysis.dir/leak.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/malicious.cpp.o"
  "CMakeFiles/cw_analysis.dir/malicious.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/neighborhood.cpp.o"
  "CMakeFiles/cw_analysis.dir/neighborhood.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/network.cpp.o"
  "CMakeFiles/cw_analysis.dir/network.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/oracle.cpp.o"
  "CMakeFiles/cw_analysis.dir/oracle.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/overlap.cpp.o"
  "CMakeFiles/cw_analysis.dir/overlap.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/protocols.cpp.o"
  "CMakeFiles/cw_analysis.dir/protocols.cpp.o.d"
  "CMakeFiles/cw_analysis.dir/structure.cpp.o"
  "CMakeFiles/cw_analysis.dir/structure.cpp.o.d"
  "libcw_analysis.a"
  "libcw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
