file(REMOVE_RECURSE
  "libcw_sim.a"
)
