file(REMOVE_RECURSE
  "CMakeFiles/cw_sim.dir/engine.cpp.o"
  "CMakeFiles/cw_sim.dir/engine.cpp.o.d"
  "libcw_sim.a"
  "libcw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
