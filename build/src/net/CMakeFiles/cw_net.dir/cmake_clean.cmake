file(REMOVE_RECURSE
  "CMakeFiles/cw_net.dir/asn.cpp.o"
  "CMakeFiles/cw_net.dir/asn.cpp.o.d"
  "CMakeFiles/cw_net.dir/geo.cpp.o"
  "CMakeFiles/cw_net.dir/geo.cpp.o.d"
  "CMakeFiles/cw_net.dir/ipv4.cpp.o"
  "CMakeFiles/cw_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/cw_net.dir/ports.cpp.o"
  "CMakeFiles/cw_net.dir/ports.cpp.o.d"
  "libcw_net.a"
  "libcw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
