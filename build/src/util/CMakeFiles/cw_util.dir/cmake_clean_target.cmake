file(REMOVE_RECURSE
  "libcw_util.a"
)
