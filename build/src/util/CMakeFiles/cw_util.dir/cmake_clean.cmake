file(REMOVE_RECURSE
  "CMakeFiles/cw_util.dir/rng.cpp.o"
  "CMakeFiles/cw_util.dir/rng.cpp.o.d"
  "CMakeFiles/cw_util.dir/sim_time.cpp.o"
  "CMakeFiles/cw_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/cw_util.dir/strings.cpp.o"
  "CMakeFiles/cw_util.dir/strings.cpp.o.d"
  "CMakeFiles/cw_util.dir/table.cpp.o"
  "CMakeFiles/cw_util.dir/table.cpp.o.d"
  "libcw_util.a"
  "libcw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
