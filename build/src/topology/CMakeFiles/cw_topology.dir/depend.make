# Empty dependencies file for cw_topology.
# This may be replaced when dependencies are built.
