file(REMOVE_RECURSE
  "CMakeFiles/cw_topology.dir/deployment.cpp.o"
  "CMakeFiles/cw_topology.dir/deployment.cpp.o.d"
  "CMakeFiles/cw_topology.dir/provider.cpp.o"
  "CMakeFiles/cw_topology.dir/provider.cpp.o.d"
  "CMakeFiles/cw_topology.dir/universe.cpp.o"
  "CMakeFiles/cw_topology.dir/universe.cpp.o.d"
  "libcw_topology.a"
  "libcw_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
