file(REMOVE_RECURSE
  "libcw_topology.a"
)
