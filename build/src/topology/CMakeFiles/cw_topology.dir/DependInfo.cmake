
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/deployment.cpp" "src/topology/CMakeFiles/cw_topology.dir/deployment.cpp.o" "gcc" "src/topology/CMakeFiles/cw_topology.dir/deployment.cpp.o.d"
  "/root/repo/src/topology/provider.cpp" "src/topology/CMakeFiles/cw_topology.dir/provider.cpp.o" "gcc" "src/topology/CMakeFiles/cw_topology.dir/provider.cpp.o.d"
  "/root/repo/src/topology/universe.cpp" "src/topology/CMakeFiles/cw_topology.dir/universe.cpp.o" "gcc" "src/topology/CMakeFiles/cw_topology.dir/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
