# Empty dependencies file for cw_search.
# This may be replaced when dependencies are built.
