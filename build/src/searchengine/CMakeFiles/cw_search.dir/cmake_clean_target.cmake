file(REMOVE_RECURSE
  "libcw_search.a"
)
