file(REMOVE_RECURSE
  "CMakeFiles/cw_search.dir/engine.cpp.o"
  "CMakeFiles/cw_search.dir/engine.cpp.o.d"
  "libcw_search.a"
  "libcw_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
