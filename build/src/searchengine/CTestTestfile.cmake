# CMake generated Testfile for 
# Source directory: /root/repo/src/searchengine
# Build directory: /root/repo/build/src/searchengine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
