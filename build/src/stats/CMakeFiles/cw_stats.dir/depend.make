# Empty dependencies file for cw_stats.
# This may be replaced when dependencies are built.
