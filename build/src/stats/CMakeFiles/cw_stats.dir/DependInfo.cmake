
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_squared.cpp" "src/stats/CMakeFiles/cw_stats.dir/chi_squared.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/chi_squared.cpp.o.d"
  "/root/repo/src/stats/contingency.cpp" "src/stats/CMakeFiles/cw_stats.dir/contingency.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/contingency.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/cw_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/fisher.cpp" "src/stats/CMakeFiles/cw_stats.dir/fisher.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/fisher.cpp.o.d"
  "/root/repo/src/stats/freq.cpp" "src/stats/CMakeFiles/cw_stats.dir/freq.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/freq.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/cw_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/mann_whitney.cpp" "src/stats/CMakeFiles/cw_stats.dir/mann_whitney.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/mann_whitney.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/cw_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/cw_stats.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
