file(REMOVE_RECURSE
  "libcw_stats.a"
)
