file(REMOVE_RECURSE
  "CMakeFiles/cw_stats.dir/chi_squared.cpp.o"
  "CMakeFiles/cw_stats.dir/chi_squared.cpp.o.d"
  "CMakeFiles/cw_stats.dir/contingency.cpp.o"
  "CMakeFiles/cw_stats.dir/contingency.cpp.o.d"
  "CMakeFiles/cw_stats.dir/descriptive.cpp.o"
  "CMakeFiles/cw_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/cw_stats.dir/fisher.cpp.o"
  "CMakeFiles/cw_stats.dir/fisher.cpp.o.d"
  "CMakeFiles/cw_stats.dir/freq.cpp.o"
  "CMakeFiles/cw_stats.dir/freq.cpp.o.d"
  "CMakeFiles/cw_stats.dir/ks.cpp.o"
  "CMakeFiles/cw_stats.dir/ks.cpp.o.d"
  "CMakeFiles/cw_stats.dir/mann_whitney.cpp.o"
  "CMakeFiles/cw_stats.dir/mann_whitney.cpp.o.d"
  "CMakeFiles/cw_stats.dir/special_functions.cpp.o"
  "CMakeFiles/cw_stats.dir/special_functions.cpp.o.d"
  "libcw_stats.a"
  "libcw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
