file(REMOVE_RECURSE
  "CMakeFiles/telescope_vs_cloud.dir/telescope_vs_cloud.cpp.o"
  "CMakeFiles/telescope_vs_cloud.dir/telescope_vs_cloud.cpp.o.d"
  "telescope_vs_cloud"
  "telescope_vs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_vs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
