# Empty dependencies file for telescope_vs_cloud.
# This may be replaced when dependencies are built.
