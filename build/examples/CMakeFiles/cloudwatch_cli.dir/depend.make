# Empty dependencies file for cloudwatch_cli.
# This may be replaced when dependencies are built.
