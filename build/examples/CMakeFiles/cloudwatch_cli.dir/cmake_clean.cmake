file(REMOVE_RECURSE
  "CMakeFiles/cloudwatch_cli.dir/cloudwatch_cli.cpp.o"
  "CMakeFiles/cloudwatch_cli.dir/cloudwatch_cli.cpp.o.d"
  "cloudwatch_cli"
  "cloudwatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudwatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
