file(REMOVE_RECURSE
  "CMakeFiles/leak_experiment.dir/leak_experiment.cpp.o"
  "CMakeFiles/leak_experiment.dir/leak_experiment.cpp.o.d"
  "leak_experiment"
  "leak_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
