# Empty compiler generated dependencies file for leak_experiment.
# This may be replaced when dependencies are built.
