file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fingerprinting.dir/bench_ablation_fingerprinting.cpp.o"
  "CMakeFiles/bench_ablation_fingerprinting.dir/bench_ablation_fingerprinting.cpp.o.d"
  "bench_ablation_fingerprinting"
  "bench_ablation_fingerprinting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fingerprinting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
