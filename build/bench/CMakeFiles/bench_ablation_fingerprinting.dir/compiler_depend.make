# Empty compiler generated dependencies file for bench_ablation_fingerprinting.
# This may be replaced when dependencies are built.
