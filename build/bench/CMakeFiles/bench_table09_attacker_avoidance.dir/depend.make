# Empty dependencies file for bench_table09_attacker_avoidance.
# This may be replaced when dependencies are built.
