# Empty compiler generated dependencies file for bench_table08_telescope_avoidance.
# This may be replaced when dependencies are built.
