file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_telescope_avoidance.dir/bench_table08_telescope_avoidance.cpp.o"
  "CMakeFiles/bench_table08_telescope_avoidance.dir/bench_table08_telescope_avoidance.cpp.o.d"
  "bench_table08_telescope_avoidance"
  "bench_table08_telescope_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_telescope_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
