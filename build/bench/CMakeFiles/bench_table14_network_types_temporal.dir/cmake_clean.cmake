file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_network_types_temporal.dir/bench_table14_network_types_temporal.cpp.o"
  "CMakeFiles/bench_table14_network_types_temporal.dir/bench_table14_network_types_temporal.cpp.o.d"
  "bench_table14_network_types_temporal"
  "bench_table14_network_types_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_network_types_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
