# Empty compiler generated dependencies file for bench_table14_network_types_temporal.
# This may be replaced when dependencies are built.
