# Empty dependencies file for bench_table12_neighbors_2020.
# This may be replaced when dependencies are built.
