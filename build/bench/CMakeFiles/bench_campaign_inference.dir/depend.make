# Empty dependencies file for bench_campaign_inference.
# This may be replaced when dependencies are built.
