file(REMOVE_RECURSE
  "CMakeFiles/bench_campaign_inference.dir/bench_campaign_inference.cpp.o"
  "CMakeFiles/bench_campaign_inference.dir/bench_campaign_inference.cpp.o.d"
  "bench_campaign_inference"
  "bench_campaign_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
