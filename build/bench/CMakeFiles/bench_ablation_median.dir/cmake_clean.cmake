file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_median.dir/bench_ablation_median.cpp.o"
  "CMakeFiles/bench_ablation_median.dir/bench_ablation_median.cpp.o.d"
  "bench_ablation_median"
  "bench_ablation_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
