# Empty compiler generated dependencies file for bench_ablation_median.
# This may be replaced when dependencies are built.
