# Empty dependencies file for bench_table03_search_engines.
# This may be replaced when dependencies are built.
