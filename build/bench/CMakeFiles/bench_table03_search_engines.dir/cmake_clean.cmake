file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_search_engines.dir/bench_table03_search_engines.cpp.o"
  "CMakeFiles/bench_table03_search_engines.dir/bench_table03_search_engines.cpp.o.d"
  "bench_table03_search_engines"
  "bench_table03_search_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_search_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
