# Empty compiler generated dependencies file for bench_blocklist_efficacy.
# This may be replaced when dependencies are built.
