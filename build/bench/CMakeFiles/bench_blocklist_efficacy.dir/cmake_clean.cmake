file(REMOVE_RECURSE
  "CMakeFiles/bench_blocklist_efficacy.dir/bench_blocklist_efficacy.cpp.o"
  "CMakeFiles/bench_blocklist_efficacy.dir/bench_blocklist_efficacy.cpp.o.d"
  "bench_blocklist_efficacy"
  "bench_blocklist_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocklist_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
