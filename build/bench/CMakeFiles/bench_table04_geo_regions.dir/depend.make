# Empty dependencies file for bench_table04_geo_regions.
# This may be replaced when dependencies are built.
