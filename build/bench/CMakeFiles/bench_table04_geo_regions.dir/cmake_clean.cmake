file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_geo_regions.dir/bench_table04_geo_regions.cpp.o"
  "CMakeFiles/bench_table04_geo_regions.dir/bench_table04_geo_regions.cpp.o.d"
  "bench_table04_geo_regions"
  "bench_table04_geo_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_geo_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
