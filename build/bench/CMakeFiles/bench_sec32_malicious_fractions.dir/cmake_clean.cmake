file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_malicious_fractions.dir/bench_sec32_malicious_fractions.cpp.o"
  "CMakeFiles/bench_sec32_malicious_fractions.dir/bench_sec32_malicious_fractions.cpp.o.d"
  "bench_sec32_malicious_fractions"
  "bench_sec32_malicious_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_malicious_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
