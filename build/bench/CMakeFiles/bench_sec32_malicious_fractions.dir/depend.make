# Empty dependencies file for bench_sec32_malicious_fractions.
# This may be replaced when dependencies are built.
