file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_neighbors.dir/bench_table02_neighbors.cpp.o"
  "CMakeFiles/bench_table02_neighbors.dir/bench_table02_neighbors.cpp.o.d"
  "bench_table02_neighbors"
  "bench_table02_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
