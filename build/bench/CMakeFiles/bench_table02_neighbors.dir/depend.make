# Empty dependencies file for bench_table02_neighbors.
# This may be replaced when dependencies are built.
