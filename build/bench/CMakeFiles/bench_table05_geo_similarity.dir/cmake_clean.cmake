file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_geo_similarity.dir/bench_table05_geo_similarity.cpp.o"
  "CMakeFiles/bench_table05_geo_similarity.dir/bench_table05_geo_similarity.cpp.o.d"
  "bench_table05_geo_similarity"
  "bench_table05_geo_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_geo_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
