# Empty dependencies file for bench_table05_geo_similarity.
# This may be replaced when dependencies are built.
