file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_telescope_as_2022.dir/bench_table15_telescope_as_2022.cpp.o"
  "CMakeFiles/bench_table15_telescope_as_2022.dir/bench_table15_telescope_as_2022.cpp.o.d"
  "bench_table15_telescope_as_2022"
  "bench_table15_telescope_as_2022.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_telescope_as_2022.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
