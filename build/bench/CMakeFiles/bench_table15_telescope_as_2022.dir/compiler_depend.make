# Empty compiler generated dependencies file for bench_table15_telescope_as_2022.
# This may be replaced when dependencies are built.
