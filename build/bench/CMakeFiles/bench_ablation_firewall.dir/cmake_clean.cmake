file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_firewall.dir/bench_ablation_firewall.cpp.o"
  "CMakeFiles/bench_ablation_firewall.dir/bench_ablation_firewall.cpp.o.d"
  "bench_ablation_firewall"
  "bench_ablation_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
