# Empty compiler generated dependencies file for bench_ablation_firewall.
# This may be replaced when dependencies are built.
