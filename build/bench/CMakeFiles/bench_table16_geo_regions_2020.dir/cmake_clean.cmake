file(REMOVE_RECURSE
  "CMakeFiles/bench_table16_geo_regions_2020.dir/bench_table16_geo_regions_2020.cpp.o"
  "CMakeFiles/bench_table16_geo_regions_2020.dir/bench_table16_geo_regions_2020.cpp.o.d"
  "bench_table16_geo_regions_2020"
  "bench_table16_geo_regions_2020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table16_geo_regions_2020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
