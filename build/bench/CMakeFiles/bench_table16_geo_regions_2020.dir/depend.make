# Empty dependencies file for bench_table16_geo_regions_2020.
# This may be replaced when dependencies are built.
