# Empty dependencies file for bench_table06_colocation.
# This may be replaced when dependencies are built.
