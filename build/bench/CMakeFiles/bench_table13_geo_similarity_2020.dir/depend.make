# Empty dependencies file for bench_table13_geo_similarity_2020.
# This may be replaced when dependencies are built.
