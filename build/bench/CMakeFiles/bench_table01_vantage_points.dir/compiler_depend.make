# Empty compiler generated dependencies file for bench_table01_vantage_points.
# This may be replaced when dependencies are built.
