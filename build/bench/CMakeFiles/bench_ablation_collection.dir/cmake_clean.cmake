file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collection.dir/bench_ablation_collection.cpp.o"
  "CMakeFiles/bench_ablation_collection.dir/bench_ablation_collection.cpp.o.d"
  "bench_ablation_collection"
  "bench_ablation_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
