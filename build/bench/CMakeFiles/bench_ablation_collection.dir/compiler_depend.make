# Empty compiler generated dependencies file for bench_ablation_collection.
# This may be replaced when dependencies are built.
