# Empty dependencies file for bench_table17_unexpected_2022.
# This may be replaced when dependencies are built.
