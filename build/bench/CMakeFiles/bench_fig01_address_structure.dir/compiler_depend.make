# Empty compiler generated dependencies file for bench_fig01_address_structure.
# This may be replaced when dependencies are built.
