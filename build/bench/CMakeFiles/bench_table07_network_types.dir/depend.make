# Empty dependencies file for bench_table07_network_types.
# This may be replaced when dependencies are built.
