# Empty compiler generated dependencies file for bench_table10_telescope_as.
# This may be replaced when dependencies are built.
