file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_telescope_as.dir/bench_table10_telescope_as.cpp.o"
  "CMakeFiles/bench_table10_telescope_as.dir/bench_table10_telescope_as.cpp.o.d"
  "bench_table10_telescope_as"
  "bench_table10_telescope_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_telescope_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
