file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_unexpected_protocols.dir/bench_table11_unexpected_protocols.cpp.o"
  "CMakeFiles/bench_table11_unexpected_protocols.dir/bench_table11_unexpected_protocols.cpp.o.d"
  "bench_table11_unexpected_protocols"
  "bench_table11_unexpected_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_unexpected_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
