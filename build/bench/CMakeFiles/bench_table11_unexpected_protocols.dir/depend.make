# Empty dependencies file for bench_table11_unexpected_protocols.
# This may be replaced when dependencies are built.
