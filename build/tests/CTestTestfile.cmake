# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cw_util_test[1]_include.cmake")
include("/root/repo/build/tests/cw_net_test[1]_include.cmake")
include("/root/repo/build/tests/cw_stats_test[1]_include.cmake")
include("/root/repo/build/tests/cw_sim_test[1]_include.cmake")
include("/root/repo/build/tests/cw_topology_test[1]_include.cmake")
include("/root/repo/build/tests/cw_proto_test[1]_include.cmake")
include("/root/repo/build/tests/cw_ids_test[1]_include.cmake")
include("/root/repo/build/tests/cw_capture_test[1]_include.cmake")
include("/root/repo/build/tests/cw_search_test[1]_include.cmake")
include("/root/repo/build/tests/cw_agents_test[1]_include.cmake")
include("/root/repo/build/tests/cw_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cw_integration_test[1]_include.cmake")
