# Empty compiler generated dependencies file for cw_search_test.
# This may be replaced when dependencies are built.
