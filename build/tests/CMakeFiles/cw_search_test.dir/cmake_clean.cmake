file(REMOVE_RECURSE
  "CMakeFiles/cw_search_test.dir/searchengine/engine_test.cpp.o"
  "CMakeFiles/cw_search_test.dir/searchengine/engine_test.cpp.o.d"
  "cw_search_test"
  "cw_search_test.pdb"
  "cw_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
