
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ids/engine_test.cpp" "tests/CMakeFiles/cw_ids_test.dir/ids/engine_test.cpp.o" "gcc" "tests/CMakeFiles/cw_ids_test.dir/ids/engine_test.cpp.o.d"
  "/root/repo/tests/ids/rule_test.cpp" "tests/CMakeFiles/cw_ids_test.dir/ids/rule_test.cpp.o" "gcc" "tests/CMakeFiles/cw_ids_test.dir/ids/rule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/cw_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/searchengine/CMakeFiles/cw_search.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/cw_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cw_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
