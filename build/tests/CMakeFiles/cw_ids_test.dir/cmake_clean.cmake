file(REMOVE_RECURSE
  "CMakeFiles/cw_ids_test.dir/ids/engine_test.cpp.o"
  "CMakeFiles/cw_ids_test.dir/ids/engine_test.cpp.o.d"
  "CMakeFiles/cw_ids_test.dir/ids/rule_test.cpp.o"
  "CMakeFiles/cw_ids_test.dir/ids/rule_test.cpp.o.d"
  "cw_ids_test"
  "cw_ids_test.pdb"
  "cw_ids_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_ids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
