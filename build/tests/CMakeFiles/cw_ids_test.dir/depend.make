# Empty dependencies file for cw_ids_test.
# This may be replaced when dependencies are built.
