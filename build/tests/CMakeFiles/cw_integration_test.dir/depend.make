# Empty dependencies file for cw_integration_test.
# This may be replaced when dependencies are built.
