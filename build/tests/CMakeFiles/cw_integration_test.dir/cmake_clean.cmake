file(REMOVE_RECURSE
  "CMakeFiles/cw_integration_test.dir/integration/config_knobs_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/config_knobs_test.cpp.o.d"
  "CMakeFiles/cw_integration_test.dir/integration/experiment_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/experiment_test.cpp.o.d"
  "CMakeFiles/cw_integration_test.dir/integration/leak_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/leak_test.cpp.o.d"
  "CMakeFiles/cw_integration_test.dir/integration/paper_claims_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/paper_claims_test.cpp.o.d"
  "CMakeFiles/cw_integration_test.dir/integration/tables_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/tables_test.cpp.o.d"
  "CMakeFiles/cw_integration_test.dir/integration/temporal_test.cpp.o"
  "CMakeFiles/cw_integration_test.dir/integration/temporal_test.cpp.o.d"
  "cw_integration_test"
  "cw_integration_test.pdb"
  "cw_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
