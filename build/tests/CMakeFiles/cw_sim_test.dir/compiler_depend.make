# Empty compiler generated dependencies file for cw_sim_test.
# This may be replaced when dependencies are built.
