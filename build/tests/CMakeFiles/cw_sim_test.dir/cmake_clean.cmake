file(REMOVE_RECURSE
  "CMakeFiles/cw_sim_test.dir/sim/engine_test.cpp.o"
  "CMakeFiles/cw_sim_test.dir/sim/engine_test.cpp.o.d"
  "cw_sim_test"
  "cw_sim_test.pdb"
  "cw_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
