file(REMOVE_RECURSE
  "CMakeFiles/cw_agents_test.dir/agents/campaign_test.cpp.o"
  "CMakeFiles/cw_agents_test.dir/agents/campaign_test.cpp.o.d"
  "CMakeFiles/cw_agents_test.dir/agents/evader_test.cpp.o"
  "CMakeFiles/cw_agents_test.dir/agents/evader_test.cpp.o.d"
  "CMakeFiles/cw_agents_test.dir/agents/miner_test.cpp.o"
  "CMakeFiles/cw_agents_test.dir/agents/miner_test.cpp.o.d"
  "CMakeFiles/cw_agents_test.dir/agents/population_test.cpp.o"
  "CMakeFiles/cw_agents_test.dir/agents/population_test.cpp.o.d"
  "cw_agents_test"
  "cw_agents_test.pdb"
  "cw_agents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
