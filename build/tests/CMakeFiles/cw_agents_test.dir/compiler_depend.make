# Empty compiler generated dependencies file for cw_agents_test.
# This may be replaced when dependencies are built.
