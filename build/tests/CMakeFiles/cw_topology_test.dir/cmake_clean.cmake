file(REMOVE_RECURSE
  "CMakeFiles/cw_topology_test.dir/topology/deployment_test.cpp.o"
  "CMakeFiles/cw_topology_test.dir/topology/deployment_test.cpp.o.d"
  "CMakeFiles/cw_topology_test.dir/topology/universe_test.cpp.o"
  "CMakeFiles/cw_topology_test.dir/topology/universe_test.cpp.o.d"
  "cw_topology_test"
  "cw_topology_test.pdb"
  "cw_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
