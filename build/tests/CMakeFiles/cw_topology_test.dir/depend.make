# Empty dependencies file for cw_topology_test.
# This may be replaced when dependencies are built.
