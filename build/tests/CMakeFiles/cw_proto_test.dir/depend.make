# Empty dependencies file for cw_proto_test.
# This may be replaced when dependencies are built.
