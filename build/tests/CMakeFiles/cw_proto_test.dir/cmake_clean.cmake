file(REMOVE_RECURSE
  "CMakeFiles/cw_proto_test.dir/proto/banners_test.cpp.o"
  "CMakeFiles/cw_proto_test.dir/proto/banners_test.cpp.o.d"
  "CMakeFiles/cw_proto_test.dir/proto/credentials_test.cpp.o"
  "CMakeFiles/cw_proto_test.dir/proto/credentials_test.cpp.o.d"
  "CMakeFiles/cw_proto_test.dir/proto/exploits_test.cpp.o"
  "CMakeFiles/cw_proto_test.dir/proto/exploits_test.cpp.o.d"
  "CMakeFiles/cw_proto_test.dir/proto/fingerprint_test.cpp.o"
  "CMakeFiles/cw_proto_test.dir/proto/fingerprint_test.cpp.o.d"
  "CMakeFiles/cw_proto_test.dir/proto/http_test.cpp.o"
  "CMakeFiles/cw_proto_test.dir/proto/http_test.cpp.o.d"
  "cw_proto_test"
  "cw_proto_test.pdb"
  "cw_proto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
