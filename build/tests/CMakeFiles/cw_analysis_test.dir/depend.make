# Empty dependencies file for cw_analysis_test.
# This may be replaced when dependencies are built.
