file(REMOVE_RECURSE
  "CMakeFiles/cw_analysis_test.dir/analysis/blocklist_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/blocklist_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/campaigns_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/campaigns_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/characteristics_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/characteristics_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/comparison_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/comparison_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/geography_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/geography_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/malicious_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/malicious_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/network_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/network_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/overlap_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/overlap_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/protocols_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/protocols_test.cpp.o.d"
  "CMakeFiles/cw_analysis_test.dir/analysis/structure_test.cpp.o"
  "CMakeFiles/cw_analysis_test.dir/analysis/structure_test.cpp.o.d"
  "cw_analysis_test"
  "cw_analysis_test.pdb"
  "cw_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
