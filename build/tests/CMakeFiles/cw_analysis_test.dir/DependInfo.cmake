
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/blocklist_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/blocklist_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/blocklist_test.cpp.o.d"
  "/root/repo/tests/analysis/campaigns_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/campaigns_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/campaigns_test.cpp.o.d"
  "/root/repo/tests/analysis/characteristics_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/characteristics_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/characteristics_test.cpp.o.d"
  "/root/repo/tests/analysis/comparison_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/comparison_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/comparison_test.cpp.o.d"
  "/root/repo/tests/analysis/geography_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/geography_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/geography_test.cpp.o.d"
  "/root/repo/tests/analysis/malicious_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/malicious_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/malicious_test.cpp.o.d"
  "/root/repo/tests/analysis/network_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/network_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/network_test.cpp.o.d"
  "/root/repo/tests/analysis/overlap_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/overlap_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/overlap_test.cpp.o.d"
  "/root/repo/tests/analysis/protocols_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/protocols_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/protocols_test.cpp.o.d"
  "/root/repo/tests/analysis/structure_test.cpp" "tests/CMakeFiles/cw_analysis_test.dir/analysis/structure_test.cpp.o" "gcc" "tests/CMakeFiles/cw_analysis_test.dir/analysis/structure_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/cw_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/searchengine/CMakeFiles/cw_search.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/cw_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/cw_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/cw_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
