# Empty compiler generated dependencies file for cw_capture_test.
# This may be replaced when dependencies are built.
