file(REMOVE_RECURSE
  "CMakeFiles/cw_capture_test.dir/capture/collector_test.cpp.o"
  "CMakeFiles/cw_capture_test.dir/capture/collector_test.cpp.o.d"
  "CMakeFiles/cw_capture_test.dir/capture/dataset_test.cpp.o"
  "CMakeFiles/cw_capture_test.dir/capture/dataset_test.cpp.o.d"
  "CMakeFiles/cw_capture_test.dir/capture/firewall_test.cpp.o"
  "CMakeFiles/cw_capture_test.dir/capture/firewall_test.cpp.o.d"
  "CMakeFiles/cw_capture_test.dir/capture/pcap_test.cpp.o"
  "CMakeFiles/cw_capture_test.dir/capture/pcap_test.cpp.o.d"
  "cw_capture_test"
  "cw_capture_test.pdb"
  "cw_capture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
