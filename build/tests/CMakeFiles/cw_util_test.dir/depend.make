# Empty dependencies file for cw_util_test.
# This may be replaced when dependencies are built.
