file(REMOVE_RECURSE
  "CMakeFiles/cw_util_test.dir/util/rng_test.cpp.o"
  "CMakeFiles/cw_util_test.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/cw_util_test.dir/util/sim_time_test.cpp.o"
  "CMakeFiles/cw_util_test.dir/util/sim_time_test.cpp.o.d"
  "CMakeFiles/cw_util_test.dir/util/strings_test.cpp.o"
  "CMakeFiles/cw_util_test.dir/util/strings_test.cpp.o.d"
  "CMakeFiles/cw_util_test.dir/util/table_test.cpp.o"
  "CMakeFiles/cw_util_test.dir/util/table_test.cpp.o.d"
  "cw_util_test"
  "cw_util_test.pdb"
  "cw_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
