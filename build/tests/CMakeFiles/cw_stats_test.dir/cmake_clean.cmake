file(REMOVE_RECURSE
  "CMakeFiles/cw_stats_test.dir/stats/chi_squared_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/chi_squared_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/contingency_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/contingency_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/fisher_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/fisher_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/freq_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/freq_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/mwu_ks_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/mwu_ks_test.cpp.o.d"
  "CMakeFiles/cw_stats_test.dir/stats/special_functions_test.cpp.o"
  "CMakeFiles/cw_stats_test.dir/stats/special_functions_test.cpp.o.d"
  "cw_stats_test"
  "cw_stats_test.pdb"
  "cw_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
