# Empty compiler generated dependencies file for cw_stats_test.
# This may be replaced when dependencies are built.
