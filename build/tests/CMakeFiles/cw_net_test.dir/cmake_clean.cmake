file(REMOVE_RECURSE
  "CMakeFiles/cw_net_test.dir/net/asn_geo_test.cpp.o"
  "CMakeFiles/cw_net_test.dir/net/asn_geo_test.cpp.o.d"
  "CMakeFiles/cw_net_test.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/cw_net_test.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/cw_net_test.dir/net/ports_test.cpp.o"
  "CMakeFiles/cw_net_test.dir/net/ports_test.cpp.o.d"
  "cw_net_test"
  "cw_net_test.pdb"
  "cw_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cw_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
