# Empty dependencies file for cw_net_test.
# This may be replaced when dependencies are built.
