// bench_serve — mixed ingest+query load against stream::ReportServer.
//
// A live window runs in the background (sealing epochs and publishing their
// rendered tables) while client threads hammer the server over real keep-alive
// sockets. Two phases are measured separately:
//
//   mixed   requests issued while the live run is still sealing/rendering —
//           the server's lock-free-read claim under producer pressure
//   cached  requests after the final epoch, when every response comes from
//           the per-(epoch, route) cache — the steady-state read path
//
// Per-request latency is wall-clock around one send+recv round trip; the
// percentiles and QPS go to stdout as JSON for BENCH_runner.json.
//
// Environment knobs:
//   CW_SCALE          experiment scale (default 0.1 — the live run is the
//                     backdrop here, not the thing being measured)
//   CW_T24            telescope /24 count (default 4)
//   CW_EPOCHS         epoch count for the live window (default 6)
//   CW_SERVE_CLIENTS  concurrent reader connections (default 4)
//   CW_SERVE_WORKERS  server handler pool size (default 4)
//   CW_SERVE_SECONDS  cached-phase measurement window (default 5)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "stream/live_report.h"

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One GET round trip on a keep-alive connection; returns false on any
// protocol hiccup (caller reconnects).
bool get_round_trip(int fd, const std::string& target, std::string& buffer) {
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return false;
  }
  buffer.clear();
  char chunk[16384];
  std::size_t body_start = 0;
  std::size_t content_length = 0;
  for (;;) {
    if (body_start == 0) {
      const std::size_t head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t tag = buffer.find("Content-Length: ");
        if (tag == std::string::npos || tag > head_end) return false;
        content_length = static_cast<std::size_t>(
            std::atoll(buffer.c_str() + tag + std::strlen("Content-Length: ")));
        body_start = head_end + 4;
      }
    }
    if (body_start != 0 && buffer.size() >= body_start + content_length) return true;
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
}

struct Phase {
  std::vector<double> latencies_us;  // merged across clients
  double wall_seconds = 0.0;

  [[nodiscard]] double percentile(double p) const {
    if (latencies_us.empty()) return 0.0;
    std::vector<double> sorted = latencies_us;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
  }
  [[nodiscard]] double qps() const {
    return wall_seconds > 0 ? static_cast<double>(latencies_us.size()) / wall_seconds : 0.0;
  }
};

}  // namespace

int main() {
  const double scale = env_double("CW_SCALE", 0.1);
  const int t24 = env_int("CW_T24", 4);
  const std::size_t epochs = static_cast<std::size_t>(env_int("CW_EPOCHS", 6));
  const std::size_t clients = static_cast<std::size_t>(env_int("CW_SERVE_CLIENTS", 4));
  const int cached_seconds = env_int("CW_SERVE_SECONDS", 5);

  cw::stream::LiveReportConfig config;
  config.experiment.scale = scale;
  config.experiment.telescope_slash24s = t24;
  config.epochs = epochs;
  config.shards = 4;
  config.jobs = 1;
  config.report.include_leak = false;
  config.extract_findings = true;

  cw::stream::ReportPublisher publisher;
  cw::stream::ReportServerConfig server_config;
  server_config.workers = static_cast<unsigned>(env_int("CW_SERVE_WORKERS", 4));
  server_config.max_connections = clients + 8;
  cw::stream::ReportServer server(publisher, server_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_serve: server start failed: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_serve: scale %.2f, t24 %d, %zu epochs, %zu clients, port %u\n",
               scale, t24, epochs, clients, server.port());

  // Background producer: the live window seals, renders, publishes.
  std::atomic<bool> live_done{false};
  std::thread producer([&config, &publisher, &live_done, scale] {
    cw::stream::LiveReport live(config);
    live.run([&publisher, scale](const cw::stream::EpochReport& report) {
      publisher.publish(cw::stream::PublishedEpoch::from_report(report, scale));
      std::fprintf(stderr, "bench_serve: published epoch %llu (+%llu records)\n",
                   static_cast<unsigned long long>(report.epoch),
                   static_cast<unsigned long long>(report.records_new));
    });
    live_done.store(true);
  });

  // Clients hammer the table/report routes for whatever epochs exist,
  // tagging each latency sample with the phase it ran in.
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> mixed_lat(clients);
  std::vector<std::vector<double>> cached_lat(clients);
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int fd = -1;
      std::string buffer;
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t latest = publisher.latest_epoch();
        if (latest == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        if (fd < 0) fd = connect_to(server.port());
        if (fd < 0) {
          ++failures;
          continue;
        }
        // Rotate target epochs and routes deterministically per client.
        const std::uint64_t k = 1 + (i + c) % latest;
        const auto epoch = publisher.epoch(k);
        if (!epoch || epoch->tables.empty()) continue;
        const std::string& slug = epoch->table_slugs[(i / latest) % epoch->table_slugs.size()];
        const std::string target = i % 4 == 3
                                       ? "/epoch/" + std::to_string(k) + "/report"
                                       : "/epoch/" + std::to_string(k) + "/table/" + slug;
        const bool mixed_phase = !live_done.load(std::memory_order_relaxed);
        const auto begin = Clock::now();
        const bool ok = get_round_trip(fd, target, buffer);
        const auto end = Clock::now();
        if (!ok) {
          ::close(fd);
          fd = -1;
          ++failures;
          continue;
        }
        const double us =
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(end - begin)
                .count();
        (mixed_phase ? mixed_lat : cached_lat)[c].push_back(us);
        ++i;
      }
      if (fd >= 0) ::close(fd);
    });
  }

  const auto mixed_begin = Clock::now();
  producer.join();
  const auto mixed_end = Clock::now();
  // Cached phase: the live run is over; every request hits the cache.
  std::this_thread::sleep_for(std::chrono::seconds(cached_seconds));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();
  const auto cached_end = Clock::now();
  server.stop();

  Phase mixed;
  mixed.wall_seconds = std::chrono::duration<double>(mixed_end - mixed_begin).count();
  for (const auto& lat : mixed_lat) {
    mixed.latencies_us.insert(mixed.latencies_us.end(), lat.begin(), lat.end());
  }
  Phase cached;
  cached.wall_seconds = std::chrono::duration<double>(cached_end - mixed_end).count();
  for (const auto& lat : cached_lat) {
    cached.latencies_us.insert(cached.latencies_us.end(), lat.begin(), lat.end());
  }

  const auto stats = server.stats();
  std::printf(
      "{\n"
      "  \"config\": {\"scale\": %.2f, \"t24\": %d, \"epochs\": %zu, \"clients\": %zu,"
      " \"server_workers\": %u},\n"
      "  \"mixed\": {\"requests\": %zu, \"wall_s\": %.2f, \"qps\": %.0f,"
      " \"p50_us\": %.0f, \"p99_us\": %.0f},\n"
      "  \"cached\": {\"requests\": %zu, \"wall_s\": %.2f, \"qps\": %.0f,"
      " \"p50_us\": %.0f, \"p99_us\": %.0f},\n"
      "  \"server\": {\"requests\": %llu, \"cache_hits\": %llu, \"accepted\": %llu,"
      " \"rejected\": %llu, \"client_failures\": %llu}\n"
      "}\n",
      scale, t24, epochs, clients, server_config.workers, mixed.latencies_us.size(),
      mixed.wall_seconds, mixed.qps(), mixed.percentile(0.5), mixed.percentile(0.99),
      cached.latencies_us.size(), cached.wall_seconds, cached.qps(), cached.percentile(0.5),
      cached.percentile(0.99), static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(failures.load()));
  return 0;
}
