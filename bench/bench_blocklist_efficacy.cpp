// Blocklist efficacy across regions — the future-work question Section 8
// raises: does a blocklist built from one region's honeypots protect
// services in another region? Builds the regional source/target matrix over
// the GreyNoise cloud vantage points and reports IP- and event-level
// coverage.
#include "bench_common.h"

#include <string>

#include "analysis/blocklist.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

std::string render_matrix() {
  const auto& result = cw::bench::shared_experiment();
  const auto matrix = cw::analysis::regional_blocklist_matrix(
      result.store(), result.deployment(), result.classifier());

  cw::util::TextTable table({"Blocklist from", "Applied to", "List size", "Target attacker IPs",
                             "IP coverage", "Event coverage"});
  for (const auto& evaluation : matrix) {
    table.add_row({evaluation.source_group, evaluation.target_group,
                   std::to_string(evaluation.blocklist_size),
                   std::to_string(evaluation.target_attacker_ips),
                   cw::util::format_double(100.0 * evaluation.ip_coverage(), 0) + "%",
                   cw::util::format_double(100.0 * evaluation.event_coverage(), 0) + "%"});
  }
  std::string out = "Blocklist efficacy across regions (Section 8 future work)\n";
  out += table.render();
  out += "Cross-continent coverage lags same-continent coverage wherever regional\n";
  out += "campaigns (Asia-Pacific especially) dominate the attacker mix — sharing\n";
  out += "blocklists across regions silently assumes attackers don't discriminate.\n";
  return out;
}

void BM_BlocklistMatrix(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_matrix());
}
BENCHMARK(BM_BlocklistMatrix)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_matrix())
