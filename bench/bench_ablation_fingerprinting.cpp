// Ablation: honeypot fingerprinting (Section 7). Pits a sophisticated
// attacker that recognizes honeypots against a naive twin with an identical
// attack profile, in the same world, and measures how much of the
// sophisticated attacker's activity the honeypots actually record — the
// "bias against sophisticated attackers" the paper flags as future work.
#include "bench_common.h"

#include <string>

#include "agents/evader.h"
#include "capture/collector.h"
#include "sim/engine.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct EvaderOutcome {
  double detection_rate = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t evaded_targets = 0;
  std::uint64_t malicious_records = 0;  // what the honeypots saw
};

EvaderOutcome run_one(double detection_rate) {
  cw::topology::DeploymentConfig dconfig;
  dconfig.telescope_slash24s = 2;
  const auto deployment = cw::topology::Deployment::table1(dconfig);
  const cw::topology::TargetUniverse universe(deployment);
  cw::capture::Collector collector(universe);
  cw::sim::Engine engine;
  cw::agents::AgentContext ctx;
  ctx.engine = &engine;
  ctx.universe = &universe;
  ctx.collector = &collector;
  ctx.window_end = cw::util::kWeek;

  cw::agents::EvaderConfig config;
  config.asn = 4134;
  config.sources = 4;
  config.detection_rate = detection_rate;
  config.cloud_coverage = 0.9;
  config.edu_coverage = 0.9;
  cw::agents::FingerprintingEvader evader(100, cw::util::Rng(7), config);
  evader.start(ctx);
  engine.run_until(cw::util::kWeek);

  EvaderOutcome outcome;
  outcome.detection_rate = detection_rate;
  outcome.probes = evader.probed();
  outcome.evaded_targets = evader.evaded();
  for (const auto& record : collector.store().records()) {
    if (record.malicious_truth) ++outcome.malicious_records;
  }
  return outcome;
}

std::string render_ablation() {
  cw::util::TextTable table({"Detection rate", "Probes sent", "Targets evaded",
                             "Malicious records honeypots saw", "Visibility vs naive"});
  const EvaderOutcome naive = run_one(0.0);
  for (const double rate : {0.0, 0.4, 0.8, 0.95}) {
    const EvaderOutcome outcome = run_one(rate);
    const double visibility =
        naive.malicious_records == 0
            ? 0.0
            : 100.0 * static_cast<double>(outcome.malicious_records) /
                  static_cast<double>(naive.malicious_records);
    table.add_row({cw::util::format_double(rate, 2), std::to_string(outcome.probes),
                   std::to_string(outcome.evaded_targets),
                   std::to_string(outcome.malicious_records),
                   cw::util::format_double(visibility, 0) + "%"});
  }
  std::string out = "Ablation: honeypot-fingerprinting attackers (Section 7)\n";
  out += table.render();
  out += "An attacker that recognizes honeypots 80-95% of the time leaves only its\n";
  out += "benign-looking probes behind: honeypot datasets systematically\n";
  out += "under-represent exactly the most sophisticated attackers.\n";
  return out;
}

void BM_AblationFingerprinting(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_one(0.8).malicious_records);
}
BENCHMARK(BM_AblationFingerprinting)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_ablation())
