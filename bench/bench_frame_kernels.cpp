// Benchmarks the SessionFrame v2 encoded kernels against their v1
// equivalents: characteristic-table builds through the dictionary-encoded
// columns (stats::FrequencyTable::from_codes) vs the v1 text scan,
// packed-posting-list iteration vs the plain index vector it replaced, and
// epoch-seal latency cold (fresh dictionaries) vs warm (the steady state of
// a live run, where the shared per-experiment dictionaries already carry
// every previously seen value). Numbers recorded in BENCH_runner.json.
#include "bench_common.h"

#include <chrono>
#include <numeric>
#include <vector>

#include "analysis/table_cache.h"
#include "stream/ingest.h"
#include "util/postings.h"

namespace cw::bench {
namespace {

constexpr analysis::Characteristic kCharacteristics[] = {
    analysis::Characteristic::kTopAs, analysis::Characteristic::kTopUsername,
    analysis::Characteristic::kTopPassword, analysis::Characteristic::kTopPayload};

const char* characteristic_label(analysis::Characteristic c) {
  switch (c) {
    case analysis::Characteristic::kTopAs: return "as";
    case analysis::Characteristic::kTopUsername: return "username";
    case analysis::Characteristic::kTopPassword: return "password";
    case analysis::Characteristic::kTopPayload: return "payload";
    case analysis::Characteristic::kFracMalicious: break;
  }
  return "?";
}

// Every record index, ascending — the shape of the Table 10 kAnyAll
// telescope side, the heaviest single table build in the report.
const std::vector<std::uint32_t>& all_records() {
  static const std::vector<std::uint32_t> records = [] {
    std::vector<std::uint32_t> out(shared_experiment().store().size());
    std::iota(out.begin(), out.end(), 0u);
    return out;
  }();
  return records;
}

// The default frame carries the encoded characteristic columns.
const capture::SessionFrame& encoded_frame() { return shared_experiment().frame(); }

// The same projection with encoding disabled: table builds over it take the
// v1 per-record text path (normalize/intern per record).
const capture::SessionFrame& v1_frame() {
  static const capture::SessionFrame frame = [] {
    const core::ExperimentResult& e = shared_experiment();
    e.store().freeze();
    capture::SessionFrame::BuildOptions options;
    options.encode_characteristics = false;
    return capture::SessionFrame::build(e.store(), e.deployment(), std::move(options));
  }();
  return frame;
}

void bm_table_build_encoded(benchmark::State& state) {
  const analysis::Characteristic characteristic =
      kCharacteristics[static_cast<std::size_t>(state.range(0))];
  const capture::SessionFrame& frame = encoded_frame();
  const util::PostingView records(all_records());
  for (auto _ : state) {
    const stats::FrequencyTable table =
        analysis::build_characteristic_table(frame, records, characteristic);
    benchmark::DoNotOptimize(table.total());
  }
  state.SetLabel(characteristic_label(characteristic));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * all_records().size()));
}
BENCHMARK(bm_table_build_encoded)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void bm_table_build_v1(benchmark::State& state) {
  const analysis::Characteristic characteristic =
      kCharacteristics[static_cast<std::size_t>(state.range(0))];
  const capture::SessionFrame& frame = v1_frame();
  const util::PostingView records(all_records());
  for (auto _ : state) {
    const stats::FrequencyTable table =
        analysis::build_characteristic_table(frame, records, characteristic);
    benchmark::DoNotOptimize(table.total());
  }
  state.SetLabel(characteristic_label(characteristic));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * all_records().size()));
}
BENCHMARK(bm_table_build_v1)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

// Largest per-port posting list in the corpus, as the packed list and as
// the v1 index vector. The frame hands out views, so the packed list is
// rebuilt once here (ascending append reproduces the identical containers).
const util::PostingList& big_port_postings() {
  static const util::PostingList* list = [] {
    const capture::SessionFrame& frame = encoded_frame();
    net::Port best = 22;
    for (const net::Port port : {net::Port{23}, net::Port{80}, net::Port{445}}) {
      if (frame.for_port(port).size() > frame.for_port(best).size()) best = port;
    }
    auto* rebuilt = new util::PostingList();
    frame.for_port(best).for_each([&](std::uint32_t index) { rebuilt->append(index); });
    rebuilt->shrink();
    return rebuilt;
  }();
  return *list;
}

const std::vector<std::uint32_t>& big_port_vector() {
  static const std::vector<std::uint32_t> vec = big_port_postings().to_vector();
  return vec;
}

void bm_postings_for_each(benchmark::State& state) {
  const util::PostingList& postings = big_port_postings();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    postings.for_each([&](std::uint32_t index) { sum += index; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * postings.size()));
  state.counters["bytes"] = static_cast<double>(postings.bytes());
}
BENCHMARK(bm_postings_for_each)->Unit(benchmark::kMicrosecond);

void bm_postings_iterator(benchmark::State& state) {
  const util::PostingList& postings = big_port_postings();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const std::uint32_t index : postings) sum += index;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * postings.size()));
}
BENCHMARK(bm_postings_iterator)->Unit(benchmark::kMicrosecond);

void bm_postings_vector(benchmark::State& state) {
  const std::vector<std::uint32_t>& postings = big_port_vector();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const std::uint32_t index : postings) sum += index;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * postings.size()));
  state.counters["bytes"] =
      static_cast<double>(postings.size() * sizeof(std::uint32_t));
}
BENCHMARK(bm_postings_vector)->Unit(benchmark::kMicrosecond);

struct RawRecord {
  capture::SessionRecord record;
  std::string payload;
  std::optional<proto::Credential> credential;
};

const std::vector<RawRecord>& raw_corpus() {
  static const std::vector<RawRecord> corpus = [] {
    const capture::EventStore& store = shared_experiment().store();
    std::vector<RawRecord> out;
    out.reserve(store.size());
    for (const capture::SessionRecord& record : store.records()) {
      RawRecord raw;
      raw.record = record;
      if (record.payload_id != capture::kNoPayload) raw.payload = store.payload(record.payload_id);
      if (record.credential_id != capture::kNoCredential) {
        raw.credential = store.credential(record.credential_id);
      }
      out.push_back(std::move(raw));
    }
    return out;
  }();
  return corpus;
}

// Epoch-seal latency, corpus split into `epochs` slices. The timed region
// is the FINAL epoch's seal: at 1 epoch that is the cold whole-corpus seal
// (every dictionary and memo empty); at 8 it is the live run's steady
// state — an epoch-sized drain whose values were mostly seen in earlier
// epochs, so the shared dictionaries answer from their memos instead of
// re-normalizing/fingerprinting/encoding. Earlier seals run untimed.
void bm_epoch_seal(benchmark::State& state) {
  const auto epochs = static_cast<std::size_t>(state.range(0));
  const core::ExperimentResult& experiment = shared_experiment();
  const std::vector<RawRecord>& corpus = raw_corpus();
  const stream::VerdictFactory verdict = [&experiment](const capture::EventStore& store) {
    return [&experiment, &store](const capture::SessionRecord& record) {
      switch (experiment.classifier().classify(record, store)) {
        case analysis::MeasuredIntent::kMalicious:
          return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
  };
  const std::size_t last_begin = corpus.size() * (epochs - 1) / epochs;
  for (auto _ : state) {
    stream::IngestShards ingest(4);
    for (std::size_t k = 0; k + 1 < epochs; ++k) {
      const std::size_t begin = corpus.size() * k / epochs;
      const std::size_t end = corpus.size() * (k + 1) / epochs;
      for (std::size_t i = begin; i < end; ++i) {
        const RawRecord& raw = corpus[i];
        ingest.append(ingest.shard_of(raw.record), raw.record, raw.payload, raw.credential);
      }
      static_cast<void>(
          ingest.seal_epoch(experiment.deployment(), verdict, nullptr, /*verdict_pure=*/true));
    }
    for (std::size_t i = last_begin; i < corpus.size(); ++i) {
      const RawRecord& raw = corpus[i];
      ingest.append(ingest.shard_of(raw.record), raw.record, raw.payload, raw.credential);
    }
    const auto start = std::chrono::steady_clock::now();
    const stream::EpochSnapshot snapshot =
        ingest.seal_epoch(experiment.deployment(), verdict, nullptr, /*verdict_pure=*/true);
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());
    benchmark::DoNotOptimize(snapshot.size());
  }
  state.SetLabel(epochs == 1 ? "cold-full" : "warm-final");
  state.counters["epochs"] = static_cast<double>(epochs);
  state.counters["epoch_records"] = static_cast<double>(corpus.size() - last_begin);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (corpus.size() - last_begin)));
}
BENCHMARK(bm_epoch_seal)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cw::bench

BENCHMARK_MAIN();
