// Table 14: network-type comparisons across years — cloud-to-cloud from the
// 2020 GreyNoise deployment, cloud-to-EDU and EDU-to-EDU from the 2022
// Honeytrap deployment (matching which vantage points existed when,
// Appendix C.2).
#include "bench_common.h"

#include <string>

#include "analysis/network.h"

namespace {

std::string render_table14() {
  const auto& r2020 = cw::bench::shared_experiment(cw::topology::ScenarioYear::k2020);
  const auto& r2022 = cw::bench::shared_experiment(cw::topology::ScenarioYear::k2022);

  const auto cc = cw::analysis::cloud_cloud_pairs(r2020.deployment());
  const auto ce = cw::analysis::cloud_edu_pairs(r2022.deployment());
  const auto ee = cw::analysis::edu_edu_pairs(r2022.deployment());

  auto cell = [](const cw::analysis::NetworkComparison& c) {
    if (!c.measurable) return std::string("x");
    std::string out = std::to_string(c.pairs_different) + "/" + std::to_string(c.pairs_tested);
    if (c.pairs_different > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " phi=%.2f", c.avg_phi);
      out += buf;
    }
    return out;
  };

  std::string out =
      "Table 14 — Cloud-Cloud (2020) / Cloud-EDU (2022) / EDU-EDU (2022)\n";
  const std::pair<cw::analysis::Characteristic, cw::analysis::TrafficScope> rows[] = {
      {cw::analysis::Characteristic::kTopAs, cw::analysis::TrafficScope::kSsh22},
      {cw::analysis::Characteristic::kTopAs, cw::analysis::TrafficScope::kTelnet23},
      {cw::analysis::Characteristic::kTopAs, cw::analysis::TrafficScope::kHttp80},
      {cw::analysis::Characteristic::kTopAs, cw::analysis::TrafficScope::kHttpAllPorts},
      {cw::analysis::Characteristic::kTopUsername, cw::analysis::TrafficScope::kSsh22},
      {cw::analysis::Characteristic::kTopUsername, cw::analysis::TrafficScope::kTelnet23},
      {cw::analysis::Characteristic::kTopPassword, cw::analysis::TrafficScope::kTelnet23},
      {cw::analysis::Characteristic::kTopPayload, cw::analysis::TrafficScope::kHttp80},
      {cw::analysis::Characteristic::kTopPayload, cw::analysis::TrafficScope::kHttpAllPorts},
      {cw::analysis::Characteristic::kFracMalicious, cw::analysis::TrafficScope::kHttp80},
      {cw::analysis::Characteristic::kFracMalicious, cw::analysis::TrafficScope::kHttpAllPorts},
  };
  for (const auto& [characteristic, scope] : rows) {
    const auto c1 = cw::analysis::compare_vantage_pairs(r2020.store(), r2020.deployment(), cc,
                                                        scope, characteristic,
                                                        r2020.classifier());
    const auto c2 = cw::analysis::compare_vantage_pairs(r2022.store(), r2022.deployment(), ce,
                                                        scope, characteristic,
                                                        r2022.classifier());
    const auto c3 = cw::analysis::compare_vantage_pairs(r2022.store(), r2022.deployment(), ee,
                                                        scope, characteristic,
                                                        r2022.classifier());
    out += std::string(cw::analysis::characteristic_name(characteristic)) + " | " +
           std::string(cw::analysis::scope_name(scope)) + " | CC " + cell(c1) + " | CE " +
           cell(c2) + " | EE " + cell(c3) + "\n";
  }
  return out;
}

void BM_Table14(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_table14());
}
BENCHMARK(BM_Table14)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_table14())
