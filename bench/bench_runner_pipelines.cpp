// Benchmarks the deterministic parallel pipeline runner: the full paper
// result set (minus the self-simulating leak experiment) regenerated at
// 1/2/4/8 workers over one cached experiment, plus the CW_JOBS-driven
// configuration. The printed artifact is the runner's own RunReport at
// CW_JOBS workers — per-pipeline wall time, events, and output size.
//
// Also times the SessionFrame build itself and the frame-vs-full-scan cost
// of the pipelines the frame was designed for (Tables 8/9/10), so the
// columnar layer's payoff is a recorded number rather than a claim.
#include "bench_common.h"

#include "agents/population.h"
#include "analysis/overlap.h"
#include "capture/frame.h"

namespace cw::bench {
namespace {

void bm_runner(benchmark::State& state) { bm_report_pipelines(state); }
BENCHMARK(bm_runner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// One frame build per iteration (pin/unpin balanced by the destructor),
// with the same verdict wiring ExperimentResult::frame uses.
void bm_frame_build(benchmark::State& state) {
  const core::ExperimentResult& experiment = shared_experiment();
  experiment.store().freeze();
  const auto jobs = static_cast<unsigned>(state.range(0));
  std::unique_ptr<runner::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<runner::ThreadPool>(jobs);
  for (auto _ : state) {
    capture::SessionFrame::BuildOptions options;
    options.pool = pool.get();
    options.verdict = [&experiment](const capture::SessionRecord& record) {
      switch (experiment.classifier().classify(record, experiment.store())) {
        case analysis::MeasuredIntent::kMalicious:
          return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign:
          return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
    const capture::SessionFrame frame = capture::SessionFrame::build(
        experiment.store(), experiment.deployment(), std::move(options));
    benchmark::DoNotOptimize(frame.size());
  }
  state.counters["jobs"] = jobs;
}
BENCHMARK(bm_frame_build)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

const std::vector<capture::ActorId>& crawler_actors() {
  static const std::vector<capture::ActorId> actors = {
      agents::Population::kCensysActorId, agents::Population::kShodanActorId};
  return actors;
}

void bm_table8_fullscan(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  e.store().freeze();
  for (auto _ : state) {
    const auto rows = analysis::scanner_overlap(e.store(), e.deployment(),
                                                net::popular_ports(), crawler_actors());
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(bm_table8_fullscan)->Unit(benchmark::kMillisecond);

void bm_table8_frame(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  const capture::SessionFrame& frame = e.frame();
  for (auto _ : state) {
    const auto rows = analysis::scanner_overlap(frame, net::popular_ports(), crawler_actors());
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(bm_table8_frame)->Unit(benchmark::kMillisecond);

const std::vector<net::Port>& table9_ports() {
  static const std::vector<net::Port> ports = {23, 2323, 80, 8080, 2222, 22};
  return ports;
}

void bm_table9_fullscan(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  e.store().freeze();
  for (auto _ : state) {
    const auto rows = analysis::attacker_overlap(e.store(), e.deployment(), e.classifier(),
                                                 table9_ports(), crawler_actors());
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(bm_table9_fullscan)->Unit(benchmark::kMillisecond);

void bm_table9_frame(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  const capture::SessionFrame& frame = e.frame();
  for (auto _ : state) {
    const auto rows = analysis::attacker_overlap(frame, table9_ports(), crawler_actors());
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(bm_table9_frame)->Unit(benchmark::kMillisecond);

constexpr analysis::TrafficScope kTable10Scopes[] = {
    analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
    analysis::TrafficScope::kHttp80, analysis::TrafficScope::kAnyAll};

void bm_table10_fullscan(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  e.store().freeze();
  for (auto _ : state) {
    std::size_t tested = 0;
    for (const auto scope : kTable10Scopes) {
      for (const bool edu : {true, false}) {
        const auto pairs = edu ? analysis::telescope_edu_pairs(e.deployment())
                               : analysis::telescope_cloud_pairs(e.deployment());
        tested += analysis::compare_vantage_pairs(e.store(), e.deployment(), pairs, scope,
                                                  analysis::Characteristic::kTopAs,
                                                  e.classifier())
                      .pairs_tested;
      }
    }
    benchmark::DoNotOptimize(tested);
  }
}
BENCHMARK(bm_table10_fullscan)->Unit(benchmark::kMillisecond);

void bm_table10_frame(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  const capture::SessionFrame& frame = e.frame();
  for (auto _ : state) {
    std::size_t tested = 0;
    for (const auto scope : kTable10Scopes) {
      for (const bool edu : {true, false}) {
        const auto pairs = edu ? analysis::telescope_edu_pairs(e.deployment())
                               : analysis::telescope_cloud_pairs(e.deployment());
        tested += analysis::compare_vantage_pairs(frame, pairs, scope,
                                                  analysis::Characteristic::kTopAs,
                                                  e.classifier())
                      .pairs_tested;
      }
    }
    benchmark::DoNotOptimize(tested);
  }
}
BENCHMARK(bm_table10_frame)->Unit(benchmark::kMillisecond);

// Cache-backed Table 10 with a COLD cache each iteration: measures what the
// shared CharacteristicTableCache buys from cross-pair reuse alone (Orion's
// table per scope is built once for its five pairs, instead of five times).
void bm_table10_cached(benchmark::State& state) {
  const core::ExperimentResult& e = shared_experiment();
  const capture::SessionFrame& frame = e.frame();
  for (auto _ : state) {
    const analysis::CharacteristicTableCache cache(frame, e.classifier());
    std::size_t tested = 0;
    for (const auto scope : kTable10Scopes) {
      for (const bool edu : {true, false}) {
        const auto pairs = edu ? analysis::telescope_edu_pairs(e.deployment())
                               : analysis::telescope_cloud_pairs(e.deployment());
        tested += analysis::compare_vantage_pairs(cache, pairs, scope,
                                                  analysis::Characteristic::kTopAs)
                      .pairs_tested;
      }
    }
    benchmark::DoNotOptimize(tested);
    state.counters["tables"] = static_cast<double>(cache.tables_built());
  }
}
BENCHMARK(bm_table10_cached)->Unit(benchmark::kMillisecond);

std::string runner_report() {
  const core::ExperimentResult& experiment = shared_experiment();
  experiment.store().freeze();
  runner::ReportOptions options;
  options.include_leak = false;
  const auto pipelines = runner::paper_report_pipelines(experiment, options);
  const auto run = runner::run_pipelines(pipelines, env_jobs());
  return run.report.render();
}

}  // namespace
}  // namespace cw::bench

CW_BENCH_MAIN(cw::bench::runner_report())
