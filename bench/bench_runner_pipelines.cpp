// Benchmarks the deterministic parallel pipeline runner: the full paper
// result set (minus the self-simulating leak experiment) regenerated at
// 1/2/4/8 workers over one cached experiment, plus the CW_JOBS-driven
// configuration. The printed artifact is the runner's own RunReport at
// CW_JOBS workers — per-pipeline wall time, events, and output size.
#include "bench_common.h"

namespace cw::bench {
namespace {

void bm_runner(benchmark::State& state) { bm_report_pipelines(state); }
BENCHMARK(bm_runner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0)
    ->Unit(benchmark::kMillisecond);

std::string runner_report() {
  const core::ExperimentResult& experiment = shared_experiment();
  experiment.store().freeze();
  runner::ReportOptions options;
  options.include_leak = false;
  const auto pipelines = runner::paper_report_pipelines(experiment, options);
  const auto run = runner::run_pipelines(pipelines, env_jobs());
  return run.report.render();
}

}  // namespace
}  // namespace cw::bench

CW_BENCH_MAIN(cw::bench::runner_report())
