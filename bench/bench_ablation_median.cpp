// Ablation: single-honeypot versus honeypot-group comparisons (Section 4.4
// and the recommendations in Section 8). Prior work deployed one honeypot
// per region; the paper shows neighboring honeypots differ, so region-level
// conclusions drawn from single honeypots are unstable. This bench compares
// every co-provider region pair twice — once using only the first honeypot
// of each region, once using all of them — and counts how often the two
// methodologies disagree about significance.
#include "bench_common.h"

#include <string>

#include "analysis/comparison.h"
#include "util/strings.h"

namespace {

struct Disagreement {
  std::size_t pairs = 0;
  std::size_t single_significant = 0;
  std::size_t group_significant = 0;
  std::size_t disagree = 0;
};

Disagreement run(cw::analysis::TrafficScope scope, cw::analysis::Characteristic characteristic) {
  const auto& result = cw::bench::shared_experiment();
  const auto& store = result.store();
  const auto& deployment = result.deployment();

  std::vector<const cw::topology::VantagePoint*> regions;
  for (const auto& vp : deployment.vantage_points()) {
    if (vp.collection == cw::topology::CollectionMethod::kGreyNoise && vp.addresses.size() >= 2) {
      regions.push_back(&vp);
    }
  }

  Disagreement out;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (regions[i]->provider != regions[j]->provider) continue;
      pairs.emplace_back(i, j);
    }
  }
  cw::analysis::CompareOptions options;
  options.family_size = pairs.size();

  for (const auto& [i, j] : pairs) {
    const auto group_a = cw::analysis::slice_vantage(store, regions[i]->id, scope);
    const auto group_b = cw::analysis::slice_vantage(store, regions[j]->id, scope);
    const auto single_a = cw::analysis::slice_neighbor(store, regions[i]->id, 0, scope);
    const auto single_b = cw::analysis::slice_neighbor(store, regions[j]->id, 0, scope);
    if (group_a.records.size() < 10 || group_b.records.size() < 10) continue;

    const auto group_test = cw::analysis::compare_characteristic(
        {group_a, group_b}, characteristic, &result.classifier(), options);
    const auto single_test = cw::analysis::compare_characteristic(
        {single_a, single_b}, characteristic, &result.classifier(), options);
    if (!group_test.chi.valid || !single_test.chi.valid) continue;
    ++out.pairs;
    out.group_significant += group_test.significant ? 1 : 0;
    out.single_significant += single_test.significant ? 1 : 0;
    out.disagree += group_test.significant != single_test.significant ? 1 : 0;
  }
  return out;
}

std::string render_ablation() {
  std::string out =
      "Ablation: one honeypot per region vs the full honeypot group\n"
      "(region pairs within one provider; 'disagree' = the two methodologies\n"
      "reach different significance conclusions for the same pair)\n\n";
  struct Row {
    cw::analysis::TrafficScope scope;
    cw::analysis::Characteristic characteristic;
  };
  const Row rows[] = {
      {cw::analysis::TrafficScope::kSsh22, cw::analysis::Characteristic::kTopAs},
      {cw::analysis::TrafficScope::kTelnet23, cw::analysis::Characteristic::kTopAs},
      {cw::analysis::TrafficScope::kHttpAllPorts, cw::analysis::Characteristic::kTopPayload},
  };
  for (const Row& row : rows) {
    const Disagreement d = run(row.scope, row.characteristic);
    out += std::string(cw::analysis::scope_name(row.scope)) + " / " +
           std::string(cw::analysis::characteristic_name(row.characteristic)) + ": pairs=" +
           std::to_string(d.pairs) + " group-significant=" + std::to_string(d.group_significant) +
           " single-significant=" + std::to_string(d.single_significant) +
           " disagree=" + std::to_string(d.disagree);
    if (d.pairs > 0) {
      out += " (" +
             cw::util::format_double(100.0 * static_cast<double>(d.disagree) /
                                         static_cast<double>(d.pairs),
                                     0) +
             "%)";
    }
    out += "\n";
  }
  out += "\nSingle-honeypot comparisons inherit the neighborhood biases of Section 4.1;\n";
  out += "the paper's median-of-group filtering avoids attributing them to geography.\n";
  return out;
}

void BM_AblationMedian(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_ablation());
}
BENCHMARK(BM_AblationMedian)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_ablation())
