// Ablation: transparent upstream firewalls (Section 7). Runs twin
// experiments — one clean, one with a signature IPS in front of every cloud
// vantage point — and compares the measured malicious fractions and exploit
// visibility. Quantifies how much an unnoticed network filter distorts
// honeypot conclusions.
#include "bench_common.h"

#include <string>

#include "analysis/characteristics.h"
#include "capture/firewall.h"
#include "ids/ruleset.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct TwinRun {
  std::unique_ptr<cw::core::ExperimentResult> clean;
  std::unique_ptr<cw::core::ExperimentResult> filtered;
  std::uint64_t firewall_dropped = 0;
};

TwinRun run_twins(double drop_probability) {
  TwinRun twins;
  cw::core::ExperimentConfig config = cw::bench::bench_config();
  config.scale = cw::bench::env_scale(0.3);
  twins.clean = cw::core::Experiment(config).run();

  // The firewall needs the deployment before the run; rebuild it the same
  // way the experiment does (same seed => identical vantage points).
  static const cw::ids::RuleEngine engine = cw::ids::curated_engine();
  auto firewall =
      std::make_shared<cw::capture::SignatureFirewall>(engine, drop_probability);
  // Protect every cloud vantage point; ids are stable across the rebuild.
  cw::topology::DeploymentConfig dconfig;
  dconfig.year = config.year;
  dconfig.telescope_slash24s = config.telescope_slash24s;
  dconfig.seed = config.seed ^ 0x746f706fULL;
  const auto deployment = cw::topology::Deployment::table1(dconfig);
  for (const auto& vp : deployment.vantage_points()) {
    if (vp.type == cw::topology::NetworkType::kCloud) firewall->protect(vp.id);
  }
  cw::core::ExperimentConfig filtered_config = config;
  filtered_config.firewall = [firewall](const cw::capture::ScanEvent& event,
                                        const cw::topology::VantagePoint& vp) {
    return firewall->inspect(event, vp);
  };
  twins.filtered = cw::core::Experiment(filtered_config).run();
  twins.firewall_dropped = firewall->dropped();
  return twins;
}

double malicious_fraction(const cw::core::ExperimentResult& result,
                          cw::analysis::TrafficScope scope) {
  std::uint64_t malicious = 0;
  std::uint64_t benign = 0;
  for (const auto id :
       result.deployment().with_collection(cw::topology::CollectionMethod::kGreyNoise)) {
    const auto slice = cw::analysis::slice_vantage(result.store(), id, scope);
    const auto [m, b] = cw::analysis::malicious_counts(slice, result.classifier());
    malicious += m;
    benign += b;
  }
  const std::uint64_t total = malicious + benign;
  return total == 0 ? 0.0 : static_cast<double>(malicious) / static_cast<double>(total);
}

std::string render_ablation() {
  const TwinRun twins = run_twins(/*drop_probability=*/0.7);
  cw::util::TextTable table(
      {"Scope", "Malicious fraction (clean)", "Malicious fraction (firewalled)"});
  for (const auto scope :
       {cw::analysis::TrafficScope::kHttp80, cw::analysis::TrafficScope::kHttpAllPorts,
        cw::analysis::TrafficScope::kSsh22, cw::analysis::TrafficScope::kTelnet23}) {
    table.add_row({std::string(cw::analysis::scope_name(scope)),
                   cw::util::format_double(100.0 * malicious_fraction(*twins.clean, scope), 1) +
                       "%",
                   cw::util::format_double(
                       100.0 * malicious_fraction(*twins.filtered, scope), 1) +
                       "%"});
  }
  std::string out = "Ablation: a transparent signature IPS (70% drop rate) in front of the\n";
  out += "cloud vantage points (Section 7's firewall confounder)\n";
  out += table.render();
  out += "firewall dropped " + std::to_string(twins.firewall_dropped) +
         " exploit connections before capture.\n";
  out += "Exploit-borne maliciousness (HTTP) collapses while credential brute force\n";
  out += "(SSH/Telnet) passes untouched — a silent filter skews protocol-level\n";
  out += "conclusions, which is why the paper validates across independent networks.\n";
  return out;
}

void BM_AblationFirewall(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_twins(0.7).firewall_dropped);
}
BENCHMARK(BM_AblationFirewall)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_ablation())
