// Table 3: impact of Internet-service search engines. Runs the full
// Section 4.3 leak experiment — control / Censys-leaked / Shodan-leaked /
// previously-leaked honeypot groups with per-engine access control — and
// reports the fold increases with Mann-Whitney (bold) and KS (*) markers.
#include "bench_common.h"

#include "analysis/leak.h"

namespace {

cw::analysis::LeakExperimentConfig leak_config() {
  cw::analysis::LeakExperimentConfig config;
  config.population_scale = cw::bench::env_scale(1.0);
  return config;
}

const cw::analysis::LeakExperimentResult& shared_leak() {
  static const cw::analysis::LeakExperimentResult result =
      cw::analysis::run_leak_experiment(leak_config());
  return result;
}

void BM_LeakExperiment(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = cw::analysis::run_leak_experiment(leak_config());
    benchmark::DoNotOptimize(result.total_records);
  }
}
BENCHMARK(BM_LeakExperiment)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(cw::core::render_table3(shared_leak()))
