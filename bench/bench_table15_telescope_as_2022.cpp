// Table 15: telescope scanner divergence, 2022 repetition
//
// Regenerates the table from a simulated 2022 observation window and
// benchmarks both the simulation build and the analysis pass.
#include "bench_common.h"

namespace {

constexpr auto kYear = cw::topology::ScenarioYear::k2022;

void BM_ExperimentBuild(benchmark::State& state) {
  cw::bench::bm_experiment_build(state, kYear);
}
BENCHMARK(BM_ExperimentBuild)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Analysis(benchmark::State& state) {
  const auto& result = cw::bench::shared_experiment(kYear);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::core::render_table10(result));
  }
}
BENCHMARK(BM_Analysis)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

CW_BENCH_MAIN(cw::core::render_table10(cw::bench::shared_experiment(kYear)))
