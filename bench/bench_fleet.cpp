// Benchmarks the runner::Fleet campaign harness: throughput of the two
// bundled campaigns (DESIGN.md §6 ablation grid and §4 calibration sweep)
// at 1/2/4/8 workers, reported as cells per minute, plus the per-cell
// memory high-water mark via getrusage ru_maxrss. The ablation campaign
// stresses corpus sharing (6 cells, 1 simulation); the calibration
// campaign stresses concurrent simulation groups (6 cells, 6 simulations).
//
// Environment knobs: CW_SCALE (default 0.3 here — campaign-sized, lighter
// than the single-experiment benches), CW_T24, CW_JOBS.
#include "bench_common.h"

#include <sys/resource.h>

#include "runner/fleet.h"
#include "runner/sweep.h"

namespace cw::bench {
namespace {

runner::CampaignParams fleet_params() {
  runner::CampaignParams params;
  params.scale = env_scale(0.3);
  params.telescope_slash24s = env_telescope_slash24s();
  return params;
}

long maxrss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

void bm_campaign(benchmark::State& state, const runner::Campaign& campaign) {
  auto jobs = static_cast<unsigned>(state.range(0));
  if (jobs == 0) jobs = env_jobs();
  runner::ThreadPool pool(jobs);
  const runner::Fleet fleet(pool);
  const long rss_before_kb = maxrss_kb();
  std::size_t cells = 0;
  for (auto _ : state) {
    const std::vector<runner::CellResult> results = fleet.run(campaign);
    benchmark::DoNotOptimize(results.size());
    cells += results.size();
  }
  state.counters["jobs"] = jobs;
  state.counters["cells_per_min"] =
      benchmark::Counter(static_cast<double>(cells) * 60.0, benchmark::Counter::kIsRate);
  // High-water growth attributable to the campaign runs, amortised per cell.
  // ru_maxrss is monotone, so later (wider) worker counts only register when
  // concurrent simulation groups genuinely push the peak higher.
  const long growth_kb = maxrss_kb() - rss_before_kb;
  state.counters["cell_hiwater_mb"] =
      static_cast<double>(growth_kb) / 1024.0 / static_cast<double>(campaign.cells.size());
  state.counters["proc_maxrss_mb"] = static_cast<double>(maxrss_kb()) / 1024.0;
}

void bm_fleet_ablation(benchmark::State& state) {
  bm_campaign(state, runner::make_ablation_campaign(fleet_params()));
}
BENCHMARK(bm_fleet_ablation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void bm_fleet_calibration(benchmark::State& state) {
  bm_campaign(state, runner::make_calibration_campaign(fleet_params()));
}
BENCHMARK(bm_fleet_calibration)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The seeding primitive itself, for the record: deriving a cell seed is two
// splitmix64 passes over the campaign seed and a label hash.
void bm_cell_seed(benchmark::State& state) {
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= runner::Fleet::cell_seed(acc + 0x636c6f7564666cULL, "calibration/alpha/x0.60");
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(bm_cell_seed);

std::string ablation_report() {
  runner::ThreadPool pool(env_jobs());
  const runner::Fleet fleet(pool);
  const runner::Campaign campaign = runner::make_ablation_campaign(fleet_params());
  return runner::SweepReport::render(campaign, fleet.run(campaign));
}

}  // namespace
}  // namespace cw::bench

CW_BENCH_MAIN(cw::bench::ablation_report())
