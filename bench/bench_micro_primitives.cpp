// Micro-benchmarks for the library's hot paths: protocol fingerprinting,
// IDS rule evaluation, HTTP normalization, event delivery, the statistics
// kernels, and the RNG. These bound the per-event cost of the simulator
// (a full-scale week processes ~10M events on one core in ~20s).
#include <benchmark/benchmark.h>

#include "capture/collector.h"
#include "ids/ruleset.h"
#include "proto/exploits.h"
#include "proto/fingerprint.h"
#include "proto/http.h"
#include "proto/payloads.h"
#include "stats/contingency.h"
#include "stats/fisher.h"
#include "stats/mann_whitney.h"
#include "topology/universe.h"
#include "util/rng.h"

namespace {

void BM_RngNext(benchmark::State& state) {
  cw::util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngZipf(benchmark::State& state) {
  cw::util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.zipf(60, 1.2));
}
BENCHMARK(BM_RngZipf);

void BM_FingerprintHttp(benchmark::State& state) {
  const std::string payload = cw::proto::probe_payload(cw::net::Protocol::kHttp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::proto::Fingerprinter::identify(payload));
  }
}
BENCHMARK(BM_FingerprintHttp);

void BM_FingerprintUnknown(benchmark::State& state) {
  const std::string payload = "no protocol here at all, just bytes and more bytes";
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::proto::Fingerprinter::identify(payload));
  }
}
BENCHMARK(BM_FingerprintUnknown);

void BM_NormalizeHttpPayload(benchmark::State& state) {
  const std::string payload =
      cw::proto::exploit_payload(cw::proto::ExploitKind::kGponRce, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::proto::normalize_http_payload(payload));
  }
}
BENCHMARK(BM_NormalizeHttpPayload);

void BM_IdsEvaluateExploit(benchmark::State& state) {
  static const cw::ids::RuleEngine engine = cw::ids::curated_engine();
  const std::string payload =
      cw::proto::exploit_payload(cw::proto::ExploitKind::kLog4Shell, 1);
  for (auto _ : state) benchmark::DoNotOptimize(engine.matches(payload, 80));
}
BENCHMARK(BM_IdsEvaluateExploit);

void BM_IdsEvaluateBenign(benchmark::State& state) {
  static const cw::ids::RuleEngine engine = cw::ids::curated_engine();
  const std::string payload = cw::proto::http_benign_request(7);
  for (auto _ : state) benchmark::DoNotOptimize(engine.matches(payload, 80));
}
BENCHMARK(BM_IdsEvaluateBenign);

void BM_CollectorDeliver(benchmark::State& state) {
  cw::topology::DeploymentConfig config;
  config.telescope_slash24s = 4;
  static const auto deployment = cw::topology::Deployment::table1(config);
  static const cw::topology::TargetUniverse universe(deployment);
  cw::capture::Collector collector(universe);
  cw::capture::ScanEvent event;
  event.src = cw::net::IPv4Addr(0xb0000001);
  event.dst = deployment.at(0).addresses.front();
  event.dst_port = 22;
  event.payload = cw::proto::ssh_client_banner();
  for (auto _ : state) {
    event.time = (event.time + 1) % cw::util::kWeek;
    benchmark::DoNotOptimize(collector.deliver(event));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectorDeliver);

void BM_ChiSquared2x8(benchmark::State& state) {
  cw::stats::ContingencyTable table(2, 8);
  for (std::size_t c = 0; c < 8; ++c) {
    table.set(0, c, 100.0 + static_cast<double>(c));
    table.set(1, c, 120.0 - static_cast<double>(c));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::stats::pearson_chi_squared(table).p_value);
  }
}
BENCHMARK(BM_ChiSquared2x8);

void BM_FisherExact(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::stats::fisher_exact_2x2(8, 2, 1, 5).p_value);
  }
}
BENCHMARK(BM_FisherExact);

void BM_MannWhitney168(benchmark::State& state) {
  cw::util::Rng rng(2);
  std::vector<double> a(168);
  std::vector<double> b(168);
  for (int i = 0; i < 168; ++i) {
    a[i] = rng.exponential(1.0) + 0.3;
    b[i] = rng.exponential(1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::stats::mann_whitney_greater(a, b).p_value);
  }
}
BENCHMARK(BM_MannWhitney168);

}  // namespace

BENCHMARK_MAIN();
