// Figure 1 (a-d): address-structure preferences inside the telescope. Runs
// with a wide telescope (default 768 /24s, spanning three /16s so 255-octet
// /24 blocks exist) and a streaming per-address counter instead of stored
// records, then prints the rolling-average series and structural ratios for
// the figure's four ports.
#include "bench_common.h"

#include <string>

#include "analysis/structure.h"
#include "stats/descriptive.h"
#include "util/strings.h"

namespace {

constexpr cw::net::Port kFigurePorts[] = {22, 445, 80, 17128};

struct FigureRun {
  std::unique_ptr<cw::core::ExperimentResult> result;
  std::unique_ptr<cw::analysis::TelescopeCounter> counter;
};

cw::core::ExperimentConfig figure_config() {
  cw::core::ExperimentConfig config;
  config.scale = cw::bench::env_scale(0.5);
  // Needs >= 512 /24s so third-octet-255 blocks appear (Figure 1b/1c).
  config.telescope_slash24s = cw::bench::env_telescope_slash24s(768);
  return config;
}

FigureRun run_figure_experiment() {
  FigureRun run;
  cw::core::ExperimentConfig config = figure_config();
  // Pre-build the deployment once to size the counter identically to the
  // experiment's own telescope.
  cw::topology::DeploymentConfig dconfig;
  dconfig.year = config.year;
  dconfig.telescope_slash24s = config.telescope_slash24s;
  dconfig.seed = config.seed ^ 0x746f706fULL;
  const auto deployment = cw::topology::Deployment::table1(dconfig);
  const cw::topology::VantagePoint* telescope = nullptr;
  for (const auto& vp : deployment.vantage_points()) {
    if (vp.type == cw::topology::NetworkType::kTelescope) telescope = &vp;
  }
  run.counter = std::make_unique<cw::analysis::TelescopeCounter>(
      *telescope, std::vector<cw::net::Port>(std::begin(kFigurePorts), std::end(kFigurePorts)));
  config.telescope_sink = [counter = run.counter.get()](const cw::capture::ScanEvent& event,
                                                        const cw::topology::Target& target) {
    return counter->consume(event, target);
  };
  run.result = cw::core::Experiment(config).run();
  return run;
}

const FigureRun& shared_run() {
  static const FigureRun run = run_figure_experiment();
  return run;
}

std::string render_panel(const FigureRun& run, cw::net::Port port) {
  const auto& counts = run.counter->counts(port);
  const auto rolled = cw::stats::rolling_average(counts, 512);
  const cw::topology::VantagePoint* telescope = nullptr;
  for (const auto& vp : run.result->deployment().vantage_points()) {
    if (vp.type == cw::topology::NetworkType::kTelescope) telescope = &vp;
  }
  const auto stats = cw::analysis::structure_stats(counts, *telescope);

  std::string out = "Figure 1 panel, port " + std::to_string(port) + " (" +
                    std::to_string(counts.size()) + " telescope addresses)\n";
  const double peak_rolled = *std::max_element(rolled.begin(), rolled.end());
  const std::size_t step = std::max<std::size_t>(rolled.size() / 32, 1);
  for (std::size_t i = 0; i < rolled.size(); i += step) {
    const int bar =
        peak_rolled > 0.0 ? static_cast<int>(rolled[i] / peak_rolled * 50.0) : 0;
    out += "  +" + std::to_string(i) + "\t" + cw::util::format_double(rolled[i], 2) + "\t" +
           std::string(static_cast<std::size_t>(std::min(bar, 50)), '#') + "\n";
  }
  out += "  class means: plain=" + cw::util::format_double(stats.mean_plain, 2) +
         " any255=" + cw::util::format_double(stats.mean_any_255, 2) +
         " last255=" + cw::util::format_double(stats.mean_last_255, 2) +
         " first/16=" + cw::util::format_double(stats.mean_first_16, 2) + "\n";
  out += "  avoidance(any255)=" + cw::util::format_double(stats.avoidance_any_255(), 1) +
         "x avoidance(.255)=" + cw::util::format_double(stats.avoidance_last_255(), 1) +
         "x preference(first/16)=" + cw::util::format_double(stats.preference_first_16(), 2) +
         "x\n";
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[argmax]) argmax = i;
  }
  out += "  peak: offset " + std::to_string(argmax) + " with " +
         cw::util::format_double(counts[argmax], 0) + " hits\n";
  return out;
}

std::string render_all_panels() {
  std::string out;
  for (cw::net::Port port : kFigurePorts) out += render_panel(shared_run(), port) + "\n";
  return out;
}

void BM_FigureExperiment(benchmark::State& state) {
  for (auto _ : state) {
    const FigureRun run = run_figure_experiment();
    benchmark::DoNotOptimize(run.result->events_processed());
  }
}
BENCHMARK(BM_FigureExperiment)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RollingAverage(benchmark::State& state) {
  const FigureRun& run = shared_run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::stats::rolling_average(run.counter->counts(22), 512));
  }
}
BENCHMARK(BM_RollingAverage)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

CW_BENCH_MAIN(render_all_panels())
