// Ablation: what each collection method retains of the same traffic
// (Sections 3.1, 6, 8). For every record captured during the main run,
// classifies what a GreyNoise honeypot, a Honeytrap honeypot, and a
// telescope would have preserved, and how much attacker evidence each
// method therefore loses — the quantitative core of the paper's "collect
// scan traffic from networks that host services" recommendation.
#include "bench_common.h"

#include <string>

#include "analysis/malicious.h"
#include "capture/collector.h"
#include "proto/fingerprint.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

std::string render_ablation() {
  const auto& result = cw::bench::shared_experiment();
  const auto& store = result.store();

  // Evaluate on the traffic honeypots actually captured with payloads (the
  // common denominator all three methods see arrive on the wire).
  std::uint64_t total = 0;
  std::uint64_t malicious_truth = 0;
  std::uint64_t greynoise_evidence = 0;   // credential or payload retained
  std::uint64_t honeytrap_evidence = 0;   // payload retained (no credentials)
  std::uint64_t protocol_identifiable = 0;  // fingerprintable beyond port
  const std::uint64_t telescope_evidence = 0;  // never retains either

  for (const cw::capture::SessionRecord& record : store.records()) {
    const auto& vp = result.deployment().at(record.vantage);
    if (vp.collection == cw::topology::CollectionMethod::kTelescope) continue;
    ++total;
    if (record.malicious_truth) ++malicious_truth;
    const bool has_payload = record.payload_id != cw::capture::kNoPayload;
    const bool has_credential = record.credential_id != cw::capture::kNoCredential;
    if (record.malicious_truth && (has_payload || has_credential)) ++greynoise_evidence;
    if (record.malicious_truth && has_payload && !has_credential) ++honeytrap_evidence;
    if (has_payload && cw::proto::Fingerprinter::identify(store.payload(record.payload_id)) !=
                           cw::net::Protocol::kUnknown) {
      ++protocol_identifiable;
    }
  }

  auto pct = [&](std::uint64_t n, std::uint64_t d) {
    return d == 0 ? std::string("-")
                  : cw::util::format_double(100.0 * static_cast<double>(n) /
                                                static_cast<double>(d),
                                            0) +
                        "%";
  };

  cw::util::TextTable table({"Collection method", "Attacker evidence retained",
                             "Protocol identifiable"});
  table.add_row({"GreyNoise (Cowrie + first payload)",
                 pct(greynoise_evidence, malicious_truth), pct(protocol_identifiable, total)});
  table.add_row({"Honeytrap (first payload only)", pct(honeytrap_evidence, malicious_truth),
                 pct(protocol_identifiable, total)});
  table.add_row({"Telescope (first packet, no handshake)",
                 pct(telescope_evidence, malicious_truth), "port-assignment guess only"});

  std::string out = "Ablation: evidence retained per collection method\n";
  out += "(over " + std::to_string(total) + " honeypot-destined connections, " +
         std::to_string(malicious_truth) + " with malicious ground truth)\n";
  out += table.render();
  out += "Credential capture is what separates GreyNoise from Honeytrap on SSH/Telnet;\n";
  out += "the telescope retains source attribution only, so intent and protocol are\n";
  out += "unmeasurable there (Sections 3.2 and 6).\n";
  return out;
}

void BM_AblationCollection(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_ablation());
}
BENCHMARK(BM_AblationCollection)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_ablation())
