// Ablation: the paper's top-3-union construction and Bonferroni correction
// (Section 3.3, footnote 2). Re-runs the Table 2 neighborhood analysis with
// k in {3, 5, 10, 100} and with/without Bonferroni, showing how wider
// category unions inflate near-zero-frequency cells and how uncorrected
// tests over-report differences.
#include "bench_common.h"

#include <string>

#include "analysis/neighborhood.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

std::string render_ablation() {
  const auto& result = cw::bench::shared_experiment();
  cw::util::TextTable table(
      {"top-k", "Bonferroni", "SSH AS % dif", "SSH username % dif", "HTTP/80 payload % dif"});

  for (const std::size_t k : {std::size_t{3}, std::size_t{5}, std::size_t{10}, std::size_t{100}}) {
    for (const bool bonferroni : {true, false}) {
      cw::analysis::NeighborhoodOptions options;
      options.top_k = k;
      options.use_bonferroni = bonferroni;
      const auto as_summary = cw::analysis::analyze_neighborhoods(
          result.store(), result.deployment(), cw::analysis::TrafficScope::kSsh22,
          cw::analysis::Characteristic::kTopAs, result.classifier(), options);
      const auto user_summary = cw::analysis::analyze_neighborhoods(
          result.store(), result.deployment(), cw::analysis::TrafficScope::kSsh22,
          cw::analysis::Characteristic::kTopUsername, result.classifier(), options);
      const auto payload_summary = cw::analysis::analyze_neighborhoods(
          result.store(), result.deployment(), cw::analysis::TrafficScope::kHttp80,
          cw::analysis::Characteristic::kTopPayload, result.classifier(), options);
      table.add_row({std::to_string(k), bonferroni ? "yes" : "no",
                     cw::util::format_double(as_summary.pct_different, 0) + "%",
                     cw::util::format_double(user_summary.pct_different, 0) + "%",
                     cw::util::format_double(payload_summary.pct_different, 0) + "%"});
    }
  }
  std::string out = "Ablation: top-k union width and Bonferroni correction (Table 2 analysis)\n";
  out += table.render();
  out += "The paper's choice (k=3, Bonferroni) bounds degrees of freedom and family-wise\n";
  out += "error; wider unions add near-zero cells, and dropping the correction inflates\n";
  out += "the share of 'different' neighborhoods.\n";
  return out;
}

void BM_AblationTopK(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_ablation());
}
BENCHMARK(BM_AblationTopK)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_ablation())
