// Shared scaffolding for the bench harnesses. Each bench binary regenerates
// one of the paper's tables/figures: it builds (and times) the simulated
// one-week experiment, times the analysis pass, and prints the paper-style
// rows so the output is directly comparable with the publication.
//
// Environment knobs:
//   CW_SCALE  population scale factor (default 0.5)
//   CW_T24    telescope size in /24 networks (default 16)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/experiment.h"
#include "core/tables.h"

namespace cw::bench {

inline double env_scale(double fallback = 0.5) {
  const char* value = std::getenv("CW_SCALE");
  return value != nullptr ? std::atof(value) : fallback;
}

inline int env_telescope_slash24s(int fallback = 16) {
  const char* value = std::getenv("CW_T24");
  return value != nullptr ? std::atoi(value) : fallback;
}

inline core::ExperimentConfig bench_config(
    topology::ScenarioYear year = topology::ScenarioYear::k2021) {
  core::ExperimentConfig config;
  config.year = year;
  config.scale = env_scale();
  config.telescope_slash24s = env_telescope_slash24s();
  return config;
}

// One experiment per scenario year, built on first use and reused by every
// benchmark iteration in the binary.
inline const core::ExperimentResult& shared_experiment(
    topology::ScenarioYear year = topology::ScenarioYear::k2021) {
  static std::map<int, std::unique_ptr<core::ExperimentResult>> cache;
  auto& slot = cache[static_cast<int>(year)];
  if (!slot) slot = core::Experiment(bench_config(year)).run();
  return *slot;
}

// Times one full experiment build (registered by most binaries so the
// simulation substrate itself is benchmarked, not just the analysis).
inline void bm_experiment_build(benchmark::State& state, topology::ScenarioYear year) {
  for (auto _ : state) {
    auto result = core::Experiment(bench_config(year)).run();
    benchmark::DoNotOptimize(result->store().size());
  }
}

// Standard main: run benchmarks, then print the regenerated artifact.
#define CW_BENCH_MAIN(print_expression)                              \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    std::printf("\n%s\n", std::string(print_expression).c_str());    \
    return 0;                                                        \
  }

}  // namespace cw::bench
