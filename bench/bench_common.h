// Shared scaffolding for the bench harnesses. Each bench binary regenerates
// one of the paper's tables/figures: it builds (and times) the simulated
// one-week experiment, times the analysis pass, and prints the paper-style
// rows so the output is directly comparable with the publication.
//
// Environment knobs:
//   CW_SCALE  population scale factor (default 0.5)
//   CW_T24    telescope size in /24 networks (default 16)
//   CW_JOBS   worker threads for the pipeline runner (default 1, 0 = all)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/experiment.h"
#include "core/tables.h"
#include "runner/report.h"
#include "runner/thread_pool.h"

namespace cw::bench {

inline double env_scale(double fallback = 0.5) {
  const char* value = std::getenv("CW_SCALE");
  return value != nullptr ? std::atof(value) : fallback;
}

inline int env_telescope_slash24s(int fallback = 16) {
  const char* value = std::getenv("CW_T24");
  return value != nullptr ? std::atoi(value) : fallback;
}

inline unsigned env_jobs(unsigned fallback = 1) {
  const char* value = std::getenv("CW_JOBS");
  if (value == nullptr) return fallback;
  const auto parsed = runner::parse_jobs(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "warning: CW_JOBS='%s' is not a valid worker count; using %u\n",
                 value, fallback);
    return fallback;
  }
  return *parsed;
}

inline core::ExperimentConfig bench_config(
    topology::ScenarioYear year = topology::ScenarioYear::k2021) {
  core::ExperimentConfig config;
  config.year = year;
  config.scale = env_scale();
  config.telescope_slash24s = env_telescope_slash24s();
  return config;
}

// One experiment per scenario year, built on first use and reused by every
// benchmark iteration in the binary.
inline const core::ExperimentResult& shared_experiment(
    topology::ScenarioYear year = topology::ScenarioYear::k2021) {
  static std::map<int, std::unique_ptr<core::ExperimentResult>> cache;
  auto& slot = cache[static_cast<int>(year)];
  if (!slot) slot = core::Experiment(bench_config(year)).run();
  return *slot;
}

// Times one full experiment build (registered by most binaries so the
// simulation substrate itself is benchmarked, not just the analysis).
inline void bm_experiment_build(benchmark::State& state, topology::ScenarioYear year) {
  for (auto _ : state) {
    auto result = core::Experiment(bench_config(year)).run();
    benchmark::DoNotOptimize(result->store().size());
  }
}

// Shared runner entry point: regenerates the full paper result set over the
// cached experiment through the deterministic pipeline runner. `jobs`
// follows CW_JOBS when the state range is 0, so one binary sweeps worker
// counts. The heavyweight leak experiment is excluded — it simulates its
// own populations and would drown out the per-table numbers.
inline void bm_report_pipelines(benchmark::State& state) {
  const core::ExperimentResult& experiment = shared_experiment();
  experiment.store().freeze();
  // Pre-build the shared columnar frame (as examples/full_report does) so
  // every iteration times the pipelines, not the one-off frame build;
  // bench_runner_pipelines times the build separately.
  static_cast<void>(experiment.frame());
  runner::ReportOptions options;
  options.include_leak = false;
  const auto pipelines = runner::paper_report_pipelines(experiment, options);
  const unsigned jobs =
      state.range(0) == 0 ? env_jobs() : static_cast<unsigned>(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto run = runner::run_pipelines(pipelines, jobs);
    bytes = 0;
    for (const std::string& output : run.outputs) bytes += output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["jobs"] = jobs;
  state.counters["output_bytes"] = static_cast<double>(bytes);
}

// Standard main: run benchmarks, then print the regenerated artifact.
#define CW_BENCH_MAIN(print_expression)                              \
  int main(int argc, char** argv) {                                  \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
      return 1;                                                      \
    }                                                                \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    std::printf("\n%s\n", std::string(print_expression).c_str());    \
    return 0;                                                        \
  }

}  // namespace cw::bench
