// Adversarial-scenario benches (DESIGN.md §8): the ground-truth clustering
// pipeline over the distinct-fingerprint family corpus, and the adaptive
// attacker vs moving-target defense loop — how expensive the new subsystem
// is next to the paper-table analyses, and what the clustering scores look
// like at bench scale.
#include "bench_common.h"

#include <string>

#include "agents/population.h"
#include "analysis/clusters.h"
#include "util/strings.h"

namespace {

cw::core::ExperimentConfig families_config() {
  cw::core::ExperimentConfig config;
  config.scale = cw::bench::env_scale(0.2);
  config.telescope_slash24s = cw::bench::env_telescope_slash24s(8);
  config.adversary.kind = cw::adversary::ScenarioKind::kClusterFamilies;
  config.adversary.replace_population = true;
  return config;
}

const cw::core::ExperimentResult& families_experiment() {
  static const auto result = cw::core::Experiment(families_config()).run();
  return *result;
}

cw::analysis::ClusterOptions cluster_options() {
  cw::analysis::ClusterOptions options;
  options.exclude_actors = {cw::agents::Population::kCensysActorId,
                            cw::agents::Population::kShodanActorId};
  return options;
}

std::string render_report() {
  const auto& result = families_experiment();
  const auto clustered = cw::analysis::cluster_attackers(result.frame(), cluster_options());

  std::string out = "Ground-truth attacker clustering (distinct-fingerprint families)\n";
  out += "corpus records:  " + std::to_string(result.store().size()) + "\n";
  out += "entities:        " + std::to_string(clustered.scores.entities) + "\n";
  out += "clusters found:  " + std::to_string(clustered.scores.clusters) + " (true actors " +
         std::to_string(clustered.scores.truth_actors) + ")\n";
  out += "purity:          " +
         cw::util::format_double(100.0 * clustered.scores.purity, 1) + "%\n";
  out += "adjusted Rand:   " + cw::util::format_double(clustered.scores.ari, 4) + "\n\n";
  out += "Behavioral fingerprints (ports, wordlists, client banners, cadence) recover\n";
  out += "the operator partition exactly when families are separable — the calibrated\n";
  out += "bound the Shamsi-style heuristics are scored against.\n";
  return out;
}

void BM_ClusterAttackers(benchmark::State& state) {
  const auto& result = families_experiment();
  const auto options = cluster_options();
  result.frame();  // exclude the one-time frame build from the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cw::analysis::cluster_attackers(result.frame(), options).scores.entities);
  }
}
BENCHMARK(BM_ClusterAttackers)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_AdaptiveVsMovingTarget(benchmark::State& state) {
  cw::core::ExperimentConfig config;
  config.scale = cw::bench::env_scale(0.2);
  config.telescope_slash24s = cw::bench::env_telescope_slash24s(8);
  config.adversary.kind = cw::adversary::ScenarioKind::kMovingTarget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::core::Experiment(config).run()->store().size());
  }
}
BENCHMARK(BM_AdaptiveVsMovingTarget)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_report())
