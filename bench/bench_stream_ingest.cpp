// Benchmarks the stream subsystem: multi-producer append throughput across
// shard counts, epoch-seal latency (drain + freeze + segment frame build),
// and the payoff of incremental statistics — one epoch's table refresh
// through analysis::SegmentedTableCache (only the new segment's partials
// are built) against the naive full rebuild a batch system would redo.
#include "bench_common.h"

#include <chrono>
#include <thread>
#include <vector>

#include "analysis/table_cache.h"
#include "stream/ingest.h"

namespace cw::bench {
namespace {

struct RawRecord {
  capture::SessionRecord record;
  std::string payload;
  std::optional<proto::Credential> credential;
};

// The shared experiment's corpus as not-yet-interned records, the shape the
// collector sink hands to the ingest layer.
const std::vector<RawRecord>& raw_corpus() {
  static const std::vector<RawRecord> corpus = [] {
    const core::ExperimentResult& experiment = shared_experiment();
    const capture::EventStore& store = experiment.store();
    std::vector<RawRecord> out;
    out.reserve(store.size());
    for (const capture::SessionRecord& record : store.records()) {
      RawRecord raw;
      raw.record = record;
      if (record.payload_id != capture::kNoPayload) raw.payload = store.payload(record.payload_id);
      if (record.credential_id != capture::kNoCredential) {
        raw.credential = store.credential(record.credential_id);
      }
      out.push_back(std::move(raw));
    }
    return out;
  }();
  return corpus;
}

// Concurrent append throughput: 4 producers feeding `shards` shard buffers
// with vantage-routed records. One shard serializes every producer on one
// mutex; sharding is what buys back the concurrency.
void bm_ingest_append(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::vector<RawRecord>& corpus = raw_corpus();
  constexpr int kProducers = 4;
  for (auto _ : state) {
    stream::IngestShards ingest(shards);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&ingest, &corpus, p] {
        for (std::size_t i = p; i < corpus.size(); i += kProducers) {
          const RawRecord& raw = corpus[i];
          ingest.append(ingest.shard_of(raw.record), raw.record, raw.payload, raw.credential);
        }
      });
    }
    for (std::thread& producer : producers) producer.join();
    benchmark::DoNotOptimize(ingest.pending());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * raw_corpus().size()));
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(bm_ingest_append)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// Epoch-seal latency: shard-major drain + store freeze + segment frame
// build (with the verdict column), over the whole bench corpus. The fill is
// excluded via manual timing.
void bm_epoch_seal(benchmark::State& state) {
  const core::ExperimentResult& experiment = shared_experiment();
  const std::vector<RawRecord>& corpus = raw_corpus();
  const stream::VerdictFactory verdict = [&experiment](const capture::EventStore& store) {
    return [&experiment, &store](const capture::SessionRecord& record) {
      switch (experiment.classifier().classify(record, store)) {
        case analysis::MeasuredIntent::kMalicious:
          return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
  };
  for (auto _ : state) {
    stream::IngestShards ingest(4);
    for (const RawRecord& raw : corpus) {
      ingest.append(ingest.shard_of(raw.record), raw.record, raw.payload, raw.credential);
    }
    const auto start = std::chrono::steady_clock::now();
    const stream::EpochSnapshot snapshot =
        ingest.seal_epoch(experiment.deployment(), verdict);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());
    benchmark::DoNotOptimize(snapshot.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * corpus.size()));
}
BENCHMARK(bm_epoch_seal)->UseManualTime()->Unit(benchmark::kMillisecond);

constexpr std::size_t kEpochs = 8;

constexpr analysis::TrafficScope kScopes[] = {
    analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
    analysis::TrafficScope::kHttp80, analysis::TrafficScope::kHttpAllPorts,
    analysis::TrafficScope::kAnyAll};
constexpr analysis::Characteristic kCharacteristics[] = {
    analysis::Characteristic::kTopAs, analysis::Characteristic::kTopUsername,
    analysis::Characteristic::kTopPassword, analysis::Characteristic::kTopPayload};

// The Tables 2/4/5/7/10 working set: every vantage-level table and
// malicious count, at every scope.
template <typename Cache>
std::uint64_t sweep_tables(const core::ExperimentResult& experiment, const Cache& cache) {
  std::uint64_t checksum = 0;
  for (const topology::VantagePoint& vp : experiment.deployment().vantage_points()) {
    for (const analysis::TrafficScope scope : kScopes) {
      checksum += cache.record_count(vp.id, scope);
      checksum += cache.malicious(vp.id, scope).first;
      for (const analysis::Characteristic characteristic : kCharacteristics) {
        checksum += cache.table(vp.id, scope, characteristic).total();
      }
    }
  }
  return checksum;
}

struct EpochSegments {
  std::vector<std::unique_ptr<capture::EventStore>> stores;
  std::vector<std::unique_ptr<capture::SessionFrame>> frames;
};

const EpochSegments& epoch_segments() {
  static const EpochSegments segments = [] {
    const core::ExperimentResult& experiment = shared_experiment();
    const capture::EventStore& corpus = experiment.store();
    EpochSegments out;
    for (std::size_t k = 0; k < kEpochs; ++k) {
      const std::size_t begin = corpus.size() * k / kEpochs;
      const std::size_t end = corpus.size() * (k + 1) / kEpochs;
      auto store = std::make_unique<capture::EventStore>();
      for (std::size_t i = begin; i < end; ++i) {
        const capture::SessionRecord& record = corpus.records()[i];
        store->append(record,
                      record.payload_id == capture::kNoPayload
                          ? std::string_view{}
                          : std::string_view(corpus.payload(record.payload_id)),
                      record.credential_id == capture::kNoCredential
                          ? std::optional<proto::Credential>{}
                          : std::optional<proto::Credential>(
                                corpus.credential(record.credential_id)));
      }
      store->freeze();
      const capture::EventStore& fixed = *store;
      capture::SessionFrame::BuildOptions options;
      options.verdict = [&experiment, &fixed](const capture::SessionRecord& record) {
        switch (experiment.classifier().classify(record, fixed)) {
          case analysis::MeasuredIntent::kMalicious:
            return capture::SessionFrame::Verdict::kMalicious;
          case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
          case analysis::MeasuredIntent::kUnobservable: break;
        }
        return capture::SessionFrame::Verdict::kUnobservable;
      };
      out.frames.push_back(std::make_unique<capture::SessionFrame>(
          capture::SessionFrame::build(fixed, experiment.deployment(), std::move(options))));
      out.stores.push_back(std::move(store));
    }
    return out;
  }();
  return segments;
}

// One epoch advance under incremental statistics: segments 1..K-1 are warm
// (their partials were built in earlier epochs); timed region = folding in
// the final segment and re-answering the whole table working set. This is
// the per-epoch refresh cost of the live report.
void bm_table_refresh_incremental(benchmark::State& state) {
  const core::ExperimentResult& experiment = shared_experiment();
  const EpochSegments& segments = epoch_segments();
  for (auto _ : state) {
    analysis::SegmentedTableCache cache(experiment.classifier());
    for (std::size_t k = 0; k + 1 < kEpochs; ++k) cache.add_segment(*segments.frames[k]);
    benchmark::DoNotOptimize(sweep_tables(experiment, cache));  // warm the old partials
    const auto start = std::chrono::steady_clock::now();
    cache.add_segment(*segments.frames[kEpochs - 1]);
    benchmark::DoNotOptimize(sweep_tables(experiment, cache));
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    state.SetIterationTime(elapsed.count());
  }
  state.counters["epochs"] = static_cast<double>(kEpochs);
}
BENCHMARK(bm_table_refresh_incremental)->UseManualTime()->Unit(benchmark::kMillisecond);

// The naive alternative: rebuild every table cold over the whole corpus, as
// a batch system re-running per epoch would.
void bm_table_refresh_full(benchmark::State& state) {
  const core::ExperimentResult& experiment = shared_experiment();
  static_cast<void>(experiment.frame());
  for (auto _ : state) {
    const analysis::CharacteristicTableCache cache(experiment.frame(), experiment.classifier());
    benchmark::DoNotOptimize(sweep_tables(experiment, cache));
  }
}
BENCHMARK(bm_table_refresh_full)->Unit(benchmark::kMillisecond);

void bm_experiment(benchmark::State& state) {
  bm_experiment_build(state, topology::ScenarioYear::k2021);
}
BENCHMARK(bm_experiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cw::bench

BENCHMARK_MAIN();
