// Benchmarks the out-of-core segment store (DESIGN.md 5f): spill-file write
// latency (the serialize + CWDS v3 write a Segment::spill pays), cold open +
// map latency, analysis-kernel throughput over an mmapped frame vs the
// resident one, and — measured in forked children so each run's high-water
// is isolated — the ru_maxrss payoff of demoting cold segments by
// hot-segment count.
#include "bench_common.h"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/table_cache.h"
#include "capture/dataset.h"
#include "capture/frame_io.h"
#include "stream/ingest.h"
#include "stream/live_report.h"
#include "stream/snapshot.h"

namespace cw::bench {
namespace {

std::string scratch_path(const char* name) {
  return std::filesystem::temp_directory_path().string() + "/cw_bench_coldstore_" + name;
}

// The whole shared corpus sealed as one stream segment: the frame carries
// verdicts, protocols, and codes exactly as a LiveReport seal produces them,
// so spill and scan numbers are representative of production segments.
const stream::EpochSnapshot& shared_snapshot() {
  static const stream::EpochSnapshot snapshot = [] {
    core::LiveExperiment live(bench_config());
    stream::IngestShards ingest(4);
    live.collector().set_store_sink(
        [&ingest](const capture::SessionRecord& record, std::string_view payload,
                  const std::optional<proto::Credential>& credential) {
          ingest.append(ingest.shard_of(record), record, payload, credential);
        });
    const analysis::MaliciousClassifier& classifier = live.result().classifier();
    const stream::VerdictFactory verdict = [&classifier](const capture::EventStore& store) {
      return [&classifier, &store](const capture::SessionRecord& record) {
        switch (classifier.classify(record, store)) {
          case analysis::MeasuredIntent::kMalicious:
            return capture::SessionFrame::Verdict::kMalicious;
          case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
          case analysis::MeasuredIntent::kUnobservable: break;
        }
        return capture::SessionFrame::Verdict::kUnobservable;
      };
    };
    live.advance_to(bench_config().duration);
    stream::EpochSnapshot out =
        ingest.seal_epoch(live.result().deployment(), verdict, nullptr, /*verdict_pure=*/true);
    live.collector().set_store_sink({});
    return out;
  }();
  return snapshot;
}

const stream::Segment& shared_segment() { return *shared_snapshot().segments().back(); }

// A spill file for the shared segment, written once (map/scan benchmarks
// read it; the segment itself stays resident).
const std::string& shared_spill_file() {
  static const std::string path = [] {
    const std::string out = scratch_path("segment.cwds");
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    capture::write_dataset(shared_segment().store(), &shared_segment().frame(), file);
    return out;
  }();
  return path;
}

// A frame permanently mapped from the spill file (cold-restart options, own
// dictionaries), scanned against the resident original below.
const capture::SessionFrame& mapped_frame() {
  static capture::FrameView view;
  static const capture::SessionFrame& frame = [&]() -> const capture::SessionFrame& {
    static capture::SessionFrame target;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::string error;
    if (!capture::probe_frame_section(shared_spill_file(), offset, length, &error)) {
      std::fprintf(stderr, "probe failed: %s\n", error.c_str());
      std::abort();
    }
    capture::FrameView::Options options;
    options.load_dicts = true;
    const auto& deployment = shared_segment().frame().deployment();
    if (!view.open(shared_spill_file(), offset, length, deployment, options, &error) ||
        !view.map(target, &error)) {
      std::fprintf(stderr, "map failed: %s\n", error.c_str());
      std::abort();
    }
    return target;
  }();
  return frame;
}

// Memory high-water by hot-segment count: each configuration runs a full
// spilling LiveReport in a forked child and the parent reads the child's
// ru_maxrss out of wait4 — the only way to measure a per-configuration
// high-water inside one benchmark binary (ru_maxrss never decreases within
// a process). Arg: number of hot segments; kResidentArg disables spilling.
constexpr std::int64_t kResidentArg = 99;

void bm_live_report_maxrss(benchmark::State& state) {
  const std::int64_t hot = state.range(0);
  const std::string dir = scratch_path("rss");
  double maxrss_mb = 0;
  for (auto _ : state) {
    const pid_t pid = fork();
    if (pid == 0) {
      stream::LiveReportConfig config;
      config.experiment = bench_config();
      config.epochs = 4;
      config.shards = 4;
      config.jobs = env_jobs();
      config.render_intermediate = false;
      config.report.include_leak = false;
      if (hot != kResidentArg) {
        config.spill_dir = dir;
        config.hot_segments = static_cast<std::size_t>(hot);
      }
      stream::LiveReport live(config);
      const stream::EpochReport report = live.run();
      _exit(report.failed ? 1 : 0);
    }
    int status = 0;
    struct rusage usage {};
    wait4(pid, &status, 0, &usage);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      state.SkipWithError("child live report failed");
      break;
    }
    maxrss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
  state.counters["maxrss_mb"] = maxrss_mb;
  std::filesystem::remove_all(dir);
}
BENCHMARK(bm_live_report_maxrss)
    ->Arg(kResidentArg)  // no spilling: the resident baseline
    ->Arg(2)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Spill-file write: FrameView::serialize of every column + posting list plus
// the CWDS v3 record/payload tables and CRC — the disk half of
// Segment::spill.
void bm_spill_write(benchmark::State& state) {
  const stream::Segment& segment = shared_segment();
  const std::string path = scratch_path("write.cwds");
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    benchmark::DoNotOptimize(capture::write_dataset(segment.store(), &segment.frame(), out));
    out.flush();
    bytes = static_cast<std::uint64_t>(out.tellp());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes * state.iterations()));
  state.counters["records"] = static_cast<double>(segment.size());
  std::filesystem::remove(path);
}
BENCHMARK(bm_spill_write)->Unit(benchmark::kMillisecond);

// Cold open + map: probe the frame section, parse the directory (with
// dictionary reload), and bind a frame — the latency a pager pays to bring
// one cold segment back, excluding page-cache misses.
void bm_spill_open_map(benchmark::State& state) {
  const std::string& path = shared_spill_file();
  const auto& deployment = shared_segment().frame().deployment();
  for (auto _ : state) {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::string error;
    capture::probe_frame_section(path, offset, length, &error);
    capture::FrameView view;
    capture::FrameView::Options options;
    options.load_dicts = true;
    capture::SessionFrame target;
    if (!view.open(path, offset, length, deployment, options, &error) ||
        !view.map(target, &error)) {
      std::fprintf(stderr, "open/map failed: %s\n", error.c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(target.size());
    view.unmap(target);
  }
  state.counters["records"] = static_cast<double>(shared_segment().size());
}
BENCHMARK(bm_spill_open_map)->Unit(benchmark::kMillisecond);

// The heavy analysis kernel — a characteristic-table cache build (postings,
// code columns, verdict column) — over the resident frame vs the mmapped
// one. The gap is the out-of-core scan overhead the tiering policy trades
// for the resident footprint.
void table_build(benchmark::State& state, const capture::SessionFrame& frame) {
  const analysis::MaliciousClassifier& classifier = shared_experiment().classifier();
  constexpr analysis::TrafficScope kScopes[] = {analysis::TrafficScope::kSsh22,
                                                analysis::TrafficScope::kAnyAll};
  for (auto _ : state) {
    analysis::CharacteristicTableCache cache(frame, classifier);
    std::uint64_t total = 0;
    for (const topology::VantagePoint& vp : frame.deployment().vantage_points()) {
      for (const analysis::TrafficScope scope : kScopes) {
        total += cache.record_count(vp.id, scope);
        total += cache.table(vp.id, scope, analysis::Characteristic::kTopAs).total();
        total += cache.malicious(vp.id, scope).first;
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["records"] = static_cast<double>(frame.size());
}
void bm_table_build_resident(benchmark::State& state) {
  table_build(state, shared_segment().frame());
}
void bm_table_build_mapped(benchmark::State& state) { table_build(state, mapped_frame()); }
BENCHMARK(bm_table_build_resident)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_table_build_mapped)->Unit(benchmark::kMillisecond);

// Posting iteration over the serialized container directory vs the packed
// in-memory lists.
void posting_scan(benchmark::State& state, const capture::SessionFrame& frame) {
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const net::Port port : {net::Port{22}, net::Port{23}, net::Port{80}, net::Port{445}}) {
      frame.for_port(port).for_each([&sum](std::uint32_t v) { sum += v; });
    }
    benchmark::DoNotOptimize(sum);
  }
}
void bm_posting_scan_resident(benchmark::State& state) {
  posting_scan(state, shared_segment().frame());
}
void bm_posting_scan_mapped(benchmark::State& state) { posting_scan(state, mapped_frame()); }
BENCHMARK(bm_posting_scan_resident)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_posting_scan_mapped)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove(cw::bench::scratch_path("segment.cwds"));
  return 0;
}
