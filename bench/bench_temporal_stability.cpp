// Temporal stability (Section 3.4 / Appendix C): runs the 2020 and 2021
// scenarios back to back and reports which headline conclusions persist —
// the machine-checkable version of "attacker preferences remain relatively
// stable over time".
#include "bench_common.h"

#include "core/temporal.h"

namespace {

std::string render_report() {
  const auto& y2020 = cw::bench::shared_experiment(cw::topology::ScenarioYear::k2020);
  const auto& y2021 = cw::bench::shared_experiment(cw::topology::ScenarioYear::k2021);
  return cw::core::compare_years(y2020, y2021, "2020", "2021").render();
}

void BM_TemporalComparison(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(render_report());
}
BENCHMARK(BM_TemporalComparison)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

CW_BENCH_MAIN(render_report())
