// Campaign inference over a full run: clusters scanning sources into
// coordinated campaigns from payload signatures alone, then validates the
// clusters against the simulator's ground-truth actors — the
// telescope-literature analysis (Torabi et al.) the paper builds on, made
// exactly checkable by the simulation.
#include "bench_common.h"

#include <algorithm>
#include <string>

#include "analysis/campaigns.h"
#include "util/strings.h"

namespace {

std::string render_report() {
  const auto& result = cw::bench::shared_experiment();
  const auto campaigns = cw::analysis::infer_campaigns(result.store());
  const auto validation = cw::analysis::validate_campaigns(result.store(), campaigns);

  std::string out = "Campaign inference from payload signatures (ground-truth validated)\n";
  out += "inferred campaigns:   " + std::to_string(validation.inferred) + "\n";
  out += "cluster purity:       " +
         cw::util::format_double(100.0 * validation.purity(), 0) + "%\n";
  out += "true multi-source campaigns: " + std::to_string(validation.true_campaigns) + "\n";
  out += "recovered (pure match):      " + std::to_string(validation.recovered) + " (" +
         cw::util::format_double(100.0 * validation.recall(), 0) + "% recall)\n\n";
  out += "largest inferred campaigns:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(campaigns.size(), 8); ++i) {
    const auto& campaign = campaigns[i];
    out += "  " + std::to_string(campaign.sources.size()) + " sources, " +
           std::to_string(campaign.events) + " events, port " +
           std::to_string(campaign.dominant_port) + ", active " +
           cw::util::format_double(
               static_cast<double>(campaign.last_seen - campaign.first_seen) / cw::util::kDay,
               1) +
           " days: " + cw::util::escape_payload(campaign.signature, 56) + "\n";
  }
  out += "\nPayload-signature clustering recovers the coordinated campaigns with high\n";
  out += "purity — but only where payloads exist: telescope data cannot support it.\n";
  return out;
}

void BM_CampaignInference(benchmark::State& state) {
  const auto& result = cw::bench::shared_experiment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cw::analysis::infer_campaigns(result.store()).size());
  }
}
BENCHMARK(BM_CampaignInference)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

CW_BENCH_MAIN(render_report())
